"""Sharded round kernels: one simulation across server-partitioned stores.

The fast kernels (:mod:`repro.sim.backends`, :mod:`repro.sim.sizedbackends`)
already split each round into a *dispatch* phase that needs only the
per-server queue totals and a *departure-resolution* phase
(``BatchQueueStore.process_block``) that is embarrassingly parallel
across servers.  This module exploits that split: the server axis is
partitioned into contiguous **shards**, each owning an independent batch
store and its own probe set, while a coordinator runs the round loop --
sampling the workload, dispatching against the **full global queue
view**, and exchanging per-round queue-length vectors -- exactly as the
fast kernel does.  Once per 256-round block the coordinator hands every
shard its slice of the admission/completion matrices; shards resolve
FIFO departures, record response times into their own histograms, and
reconstruct their queue slices independently.  End of run, shard probe
states fold back into global statistics via
:meth:`repro.sim.probes.Probe.merge_partition` (per-server arrays
concatenate, event multisets add).

Because all randomness and all policy decisions live in the coordinator,
the sharded kernels are **bit-identical to "fast"** for deterministic
policies at every shard count -- the partition changes where work is
resolved, never what happens.

Two execution strategies sit behind one shard-plan abstraction:

``serial``
    The deterministic in-process loop: shard workers are plain objects
    fed synchronously.  Zero IPC, runs anywhere (the 1-CPU CI
    container included), and the bit-identity reference for the
    process strategy.

``process``
    One worker process per shard, fed blocks over pipes (the same
    seed-stable pattern as :mod:`repro.experiments.executor`: workers
    hold no RNG, so scheduling cannot perturb results).  Departure
    resolution and probe accumulation overlap with the coordinator's
    dispatch loop; probe states return as ``state_dict`` payloads and
    fold exactly like the serial strategy's.

Probe routing: probes with ``partitionable = True`` (the default
collectors, ``server_stats``, ``windowed_mean``) replicate into every
shard and fold via ``merge_partition``; everything else -- e.g.
``dispatcher_stats``, ``herding``, and custom probes -- is fed the full
global block stream by the coordinator, unchanged from the fast kernel.
Response-event probes must be partitionable (the events exist only
inside the shards).

Additional transport strategies register through
:func:`register_shard_strategy`; ``socket`` (one worker per shard
behind a length-prefixed TCP channel, from
:mod:`repro.service.shardsocket`) loads lazily so ``repro.sim`` never
imports the service layer.

Both kernels register as ``"sharded"`` in their engine's registry and
parameterize through the name itself: ``sharded`` (2 shards, serial),
``sharded:4``, ``sharded:4:process``, ``sharded:4:socket``.  A
trailing ``:compiled`` token
(``sharded:4:compiled``, ``sharded:4:process:compiled``) swaps each
worker's departure resolver for the jitted two-pointer store from
:mod:`repro.sim.compiled` (numpy fallback per worker when numba is
missing) and, unsized, runs the compiled whole-block round loop in the
coordinator for the policies that have one.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .backends import _CHUNK_ROUNDS, EngineBackend, register_backend
from .batchstore import BatchQueueStore, SizedBatchQueueStore
from .blockdriver import (
    SizedRunState,
    UnsizedRunState,
    drive_sized,
    drive_unsized,
)
from .lifecycle import RunController, validate_start_round
from .probes import (
    Probe,
    ProbeBlock,
    ProbeContext,
    ProbeSet,
    ProbeSpec,
    QueueSeriesProbe,
    ResponseTimeProbe,
    probe_from_state,
)
from .sizedbackends import SizedEngineBackend, register_sized_backend

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Simulation, SimulationResult
    from .sized import SizedSimulation, SizedSimulationResult

__all__ = [
    "ShardPlan",
    "ShardInit",
    "ShardWorker",
    "ShardStrategy",
    "SerialShardStrategy",
    "MultiprocessShardStrategy",
    "ShardedBackend",
    "SizedShardedBackend",
    "register_shard_strategy",
    "resolve_shard_strategy",
    "split_probe_specs",
]


@dataclass(frozen=True)
class ShardPlan:
    """A partition of the server axis into contiguous, non-empty shards.

    ``bounds`` is the prefix form ``(0, n_1, ..., n)``: shard ``i`` owns
    the half-open server range ``[bounds[i], bounds[i+1])``.  Contiguity
    is what makes the fold order-preserving: concatenating shard arrays
    left to right restores the global server order.
    """

    bounds: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.bounds) < 2 or self.bounds[0] != 0:
            raise ValueError("bounds must start at 0 and define >= 1 shard")
        if any(hi <= lo for lo, hi in zip(self.bounds, self.bounds[1:])):
            raise ValueError("shard bounds must be strictly increasing")

    @classmethod
    def balanced(cls, num_servers: int, shards: int) -> "ShardPlan":
        """Near-equal contiguous split; the shard count is clamped to
        the server count so every shard owns at least one server."""
        if num_servers < 1:
            raise ValueError("need at least one server")
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        shards = min(int(shards), int(num_servers))
        sizes = np.full(shards, num_servers // shards, dtype=np.int64)
        sizes[: num_servers % shards] += 1
        bounds = np.concatenate([[0], np.cumsum(sizes)])
        return cls(bounds=tuple(int(x) for x in bounds))

    @property
    def num_shards(self) -> int:
        return len(self.bounds) - 1

    @property
    def num_servers(self) -> int:
        return self.bounds[-1]

    def ranges(self) -> list[tuple[int, int]]:
        """Per-shard ``(lo, hi)`` server ranges, in shard order."""
        return list(zip(self.bounds, self.bounds[1:]))


@dataclass(frozen=True)
class ShardInit:
    """Everything a shard worker needs, picklable for the process strategy.

    ``rates`` is the shard's own slice of the rate vector;  ``start`` is
    the global index of its first server (diagnostics only -- workers
    operate entirely in shard-local server coordinates).  ``resolver``
    selects the departure-resolution implementation: ``"numpy"`` (the
    prefix-sum store) or ``"compiled"`` (the jitted two-pointer store,
    falling back to numpy per worker when numba is unavailable).
    """

    index: int
    start: int
    rates: np.ndarray
    num_dispatchers: int
    rounds: int
    warmup: int
    sized: bool
    track_queue_series: bool
    probe_specs: tuple[ProbeSpec, ...]
    resolver: str = "numpy"

    def probe_labels(self) -> tuple[str, ...]:
        """Labels of the worker's probes, in construction order."""
        labels = ["responses"]
        if self.track_queue_series:
            labels.append("queue_series")
        labels.extend(spec.label for spec in self.probe_specs)
        return tuple(labels)


class ShardWorker:
    """One shard's private state: a batch store plus a bound probe set.

    The same object serves both strategies -- the serial strategy calls
    it in-process, the process strategy hosts it in a child process.
    Workers see only shard-local arrays: ``received``/``done`` slices of
    the coordinator's block matrices (and, sized, the shard's jobs in
    local server coordinates).  Queue slices are reconstructed here from
    those deltas, so the per-block exchange stays minimal.
    """

    def __init__(self, init: ShardInit) -> None:
        n = int(init.rates.size)
        ctx = ProbeContext(
            num_servers=n,
            num_dispatchers=init.num_dispatchers,
            rates=init.rates,
            rounds=init.rounds,
            warmup=init.warmup,
            sized=init.sized,
        )
        pairs: list[tuple[str, Probe]] = [("responses", ResponseTimeProbe())]
        if init.track_queue_series:
            pairs.append(("queue_series", QueueSeriesProbe()))
        for spec in init.probe_specs:
            pairs.append((spec.label, spec.build()))
        self.sized = init.sized
        self.warmup = init.warmup
        self.probes = ProbeSet(pairs, ctx)
        if init.resolver == "compiled":
            # Imported lazily: repro.sim.compiled registers backends and
            # must not be pulled in while the registries are mid-import.
            from .compiled import make_shard_store

            self.store = make_shard_store(n, init.sized)
        else:
            self.store = (
                SizedBatchQueueStore(n) if init.sized else BatchQueueStore(n)
            )
        self.queues = np.zeros(n, dtype=np.int64)
        self._sink = (
            self.probes.observe_responses if self.probes.wants_responses else None
        )

    def _advance_queues(self, received: np.ndarray, done: np.ndarray) -> np.ndarray:
        """Replay the block's queue dynamics for this shard's slice."""
        queue_block = np.cumsum(received - done, axis=0)
        queue_block += self.queues
        self.queues = queue_block[-1].copy()
        series = self.probes.queue_series
        if series is not None:
            series.record_many(queue_block.sum(axis=1))
        return queue_block

    def process_block(
        self, start_round: int, received: np.ndarray, done: np.ndarray
    ) -> None:
        """Unsized: resolve one block of this shard's FIFO departures."""
        queue_block = self._advance_queues(received, done)
        self.store.process_block(
            start_round,
            received,
            done,
            self.probes.histogram,
            self.warmup,
            response_sink=self._sink,
        )
        self._observe(start_round, received, done, queue_block)

    def process_sized_block(
        self,
        start_round: int,
        received: np.ndarray,
        done: np.ndarray,
        job_servers: np.ndarray,
        job_rounds: np.ndarray,
        job_sizes: np.ndarray,
    ) -> None:
        """Sized: jobs arrive server-major in shard-local coordinates."""
        queue_block = self._advance_queues(received, done)
        self.store.process_block(
            start_round,
            job_servers,
            job_rounds,
            job_sizes,
            done,
            self.probes.histogram,
            self.warmup,
            response_sink=self._sink,
        )
        self._observe(start_round, received, done, queue_block)

    def _observe(
        self,
        start_round: int,
        received: np.ndarray,
        done: np.ndarray,
        queue_block: np.ndarray,
    ) -> None:
        if not self.probes.wants_blocks:
            return
        fields = self.probes.fields
        self.probes.observe_block(
            ProbeBlock(
                start_round=start_round,
                length=received.shape[0],
                batch=None,  # dispatcher axis; partitionable probes never ask
                received=received if "received" in fields else None,
                done=done if "done" in fields else None,
                queues=queue_block if "queues" in fields else None,
            )
        )

    def probe_states(self) -> list[dict]:
        """``state_dict`` of every probe, in :meth:`ShardInit.probe_labels` order."""
        return [probe.state_dict() for probe in self.probes.as_dict().values()]

    def snapshot_state(self) -> dict:
        """Everything that varies over a run, for block-aligned checkpoints.

        Returns live references (serial strategy) or the payload that
        crosses the pipe (process strategy); either way the caller
        serializes before the worker processes another block.
        """
        return {
            "store": self.store,
            "queues": self.queues,
            "probes": self.probes,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a :meth:`snapshot_state` payload (resume mid-run)."""
        self.store = state["store"]
        self.queues = state["queues"]
        self.probes = state["probes"]
        self._sink = (
            self.probes.observe_responses if self.probes.wants_responses else None
        )


def split_probe_specs(
    specs: Sequence["str | ProbeSpec"],
) -> tuple[tuple[ProbeSpec, ...], tuple[ProbeSpec, ...]]:
    """Route each extra probe to the shards or the coordinator.

    Returns ``(shard_specs, coordinator_specs)``.  A probe rides inside
    the shards iff its class opts in via ``Probe.partitionable`` (its
    state then folds through ``merge_partition``); everything else runs
    in the coordinator against the full global block stream, exactly as
    on the fast kernel.  Two shapes cannot work and raise here:
    partitionable probes reading the ``batch`` field (it has no server
    axis to slice) and non-partitionable probes wanting response events
    (those exist only inside the shards).
    """
    shard_specs: list[ProbeSpec] = []
    coordinator_specs: list[ProbeSpec] = []
    for spec in specs:
        spec = ProbeSpec.of(spec)
        prototype = spec.build()
        if prototype.partitionable:
            if "batch" in prototype.fields:
                raise ValueError(
                    f"probe {spec.label!r} is partitionable but reads the "
                    f"'batch' block field, which has no server axis to "
                    f"partition across shards"
                )
            shard_specs.append(spec)
        elif prototype.wants_responses:
            raise ValueError(
                f"probe {spec.label!r} wants response events but is not "
                f"partitionable; on the sharded backend response events are "
                f"recorded inside the shards, so such probes must define a "
                f"partition-safe merge and set partitionable = True"
            )
        else:
            coordinator_specs.append(spec)
    return tuple(shard_specs), tuple(coordinator_specs)


# ---------------------------------------------------------------------------
# Execution strategies.
# ---------------------------------------------------------------------------


class ShardStrategy(ABC):
    """Where shard workers live and how the per-block exchange reaches them."""

    #: Parameter name, e.g. ``"serial"`` in ``sharded:4:serial``.
    name: str = "abstract"

    @abstractmethod
    def start(
        self,
        inits: Sequence[ShardInit],
        states: Sequence[dict] | None = None,
    ) -> None:
        """Materialize one worker per :class:`ShardInit`.

        ``states`` (one :meth:`ShardWorker.snapshot_state` payload per
        shard, from a checkpoint) restores each worker mid-run.
        """

    @abstractmethod
    def feed(self, shard: int, payload: tuple) -> None:
        """Hand one block's shard-local arrays to a worker.

        ``payload`` is the positional argument tuple of
        :meth:`ShardWorker.process_block` (unsized) or
        :meth:`ShardWorker.process_sized_block` (sized).
        """

    @abstractmethod
    def snapshot(self) -> list[dict]:
        """Every shard's :meth:`ShardWorker.snapshot_state`, in shard order.

        Synchronous: a worker answers only after consuming every block
        fed so far, so the snapshot is exactly the state at the current
        block boundary.  Serial-strategy payloads are live references --
        serialize before feeding another block.
        """

    @abstractmethod
    def finish(self) -> list[dict[str, Probe]]:
        """Collect every shard's probes as label -> probe maps."""

    def close(self) -> None:
        """Release workers (idempotent; called on success and failure)."""


class SerialShardStrategy(ShardStrategy):
    """In-process shard loop: deterministic, zero IPC.

    The strategy the 1-CPU CI container exercises, and the reference
    the process strategy must reproduce exactly (workers run identical
    integer arithmetic either way).
    """

    name = "serial"

    def start(
        self,
        inits: Sequence[ShardInit],
        states: Sequence[dict] | None = None,
    ) -> None:
        self._workers = [ShardWorker(init) for init in inits]
        if states is not None:
            for worker, state in zip(self._workers, states):
                worker.restore_state(state)

    def feed(self, shard: int, payload: tuple) -> None:
        worker = self._workers[shard]
        if worker.sized:
            worker.process_sized_block(*payload)
        else:
            worker.process_block(*payload)

    def snapshot(self) -> list[dict]:
        return [worker.snapshot_state() for worker in self._workers]

    def finish(self) -> list[dict[str, Probe]]:
        return [worker.probes.as_dict() for worker in self._workers]


def _shard_worker_main(conn, init: ShardInit) -> None:
    """Child-process loop of the process strategy (module-level: picklable)."""
    try:
        worker = ShardWorker(init)
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "block":
                if worker.sized:
                    worker.process_sized_block(*message[1:])
                else:
                    worker.process_block(*message[1:])
            elif kind == "restore":
                worker.restore_state(message[1])
            elif kind == "snapshot":
                conn.send(("state", worker.snapshot_state()))
            elif kind == "finish":
                conn.send(("done", worker.probe_states()))
                return
            else:  # pragma: no cover - defensive; parent sends only the above
                raise RuntimeError(f"unknown shard message {kind!r}")
    except EOFError:  # pragma: no cover - parent died; nothing to report to
        pass
    except BaseException as error:
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except OSError:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


#: Feeder-thread shutdown sentinel (identity-compared, never pickled).
_STOP = object()


class MultiprocessShardStrategy(ShardStrategy):
    """One worker process per shard, fed blocks over an async pipeline.

    Seed-stable by the same construction as the experiment executor's
    process pool: workers hold no RNG and no policy state -- every
    random draw and every dispatch decision happens in the coordinator
    -- so scheduling and interleaving cannot perturb any result; the
    probe states that come back are the ones the serial strategy
    produces, moved through ``state_dict`` (exact integer payloads).

    ``feed`` never blocks on the pipe: each shard gets a daemon feeder
    thread draining a small bounded queue, so the coordinator starts
    dispatching round ``t+1`` while shards still resolve block ``t`` --
    ``Connection.send`` of a multi-megabyte block would otherwise stall
    the coordinator whenever a block outgrows the OS pipe buffer.  The
    queue bound (a few blocks) keeps backpressure: a dead-slow shard
    still throttles the coordinator instead of accumulating blocks in
    memory.  Feeder threads are the **only** block senders; control
    messages (restore/snapshot/finish) go from the coordinator thread
    strictly after :meth:`_drain` proves the feeder idle, so exactly one
    thread writes a pipe at any time.  Send failures are recorded, not
    raised, in the feeder (it keeps draining so ``join`` cannot hang)
    and surface on the next ``feed``/``snapshot``/``finish``.
    """

    name = "process"

    #: Blocks a shard's feeder queue may hold before ``feed`` blocks.
    PIPELINE_DEPTH = 4

    def start(
        self,
        inits: Sequence[ShardInit],
        states: Sequence[dict] | None = None,
    ) -> None:
        context = multiprocessing.get_context()
        self._inits = list(inits)
        self._conns = []
        self._processes = []
        for init in inits:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker_main, args=(child_conn, init), daemon=True
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._processes.append(process)
        self._start_pipeline(states)

    def _start_pipeline(self, states: Sequence[dict] | None) -> None:
        """Restore workers, then stand up the per-shard feeder pipeline.

        Factored out of :meth:`start` so transport subclasses (the
        socket strategy in :mod:`repro.service.shardsocket`) can
        populate ``self._conns``/``self._processes`` their own way and
        inherit the async pipeline, snapshot protocol, and teardown
        unchanged -- the only transport contract is the
        ``send``/``recv``/``poll``/``close`` connection surface.
        """
        if states is not None:
            for shard, state in enumerate(states):
                try:
                    self._conns[shard].send(("restore", state))
                except (BrokenPipeError, OSError):
                    self._raise_shard_failure(shard)
        # Feeders start only after any restore: no block may precede it.
        self._send_errors: list[BaseException | None] = [None] * len(
            self._inits
        )
        self._queues = [
            queue.Queue(maxsize=self.PIPELINE_DEPTH) for _ in self._inits
        ]
        self._feeders = []
        for shard, (feed_queue, conn) in enumerate(
            zip(self._queues, self._conns)
        ):
            thread = threading.Thread(
                target=self._feeder_main,
                args=(shard, feed_queue, conn),
                name=f"shard-feeder-{shard}",
                daemon=True,
            )
            thread.start()
            self._feeders.append(thread)

    def _feeder_main(self, shard: int, feed_queue, conn) -> None:
        while True:
            item = feed_queue.get()
            try:
                if item is _STOP:
                    return
                if self._send_errors[shard] is None:
                    try:
                        conn.send(item)
                    except (BrokenPipeError, OSError) as error:
                        self._send_errors[shard] = error
            finally:
                feed_queue.task_done()

    def _drain(self, shard: int) -> None:
        """Wait until shard's feeder is idle; surface any send failure."""
        self._queues[shard].join()
        if self._send_errors[shard] is not None:
            self._raise_shard_failure(shard)

    def feed(self, shard: int, payload: tuple) -> None:
        if self._send_errors[shard] is not None:
            self._raise_shard_failure(shard)
        self._queues[shard].put(("block",) + payload)

    def snapshot(self) -> list[dict]:
        states: list[dict] = []
        for shard, conn in enumerate(self._conns):
            self._drain(shard)
            try:
                conn.send(("snapshot",))
                kind, payload = conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                self._raise_shard_failure(shard)
            if kind == "error":
                raise RuntimeError(f"shard {shard} failed: {payload}")
            states.append(payload)
        return states

    def finish(self) -> list[dict[str, Probe]]:
        shard_maps: list[dict[str, Probe]] = []
        for shard, conn in enumerate(self._conns):
            self._drain(shard)
            try:
                conn.send(("finish",))
                kind, payload = conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                self._raise_shard_failure(shard)
            if kind == "error":
                raise RuntimeError(f"shard {shard} failed: {payload}")
            labels = self._inits[shard].probe_labels()
            shard_maps.append(
                {
                    label: probe_from_state(state)
                    for label, state in zip(labels, payload)
                }
            )
        return shard_maps

    def _raise_shard_failure(self, shard: int) -> None:
        detail = ""
        try:
            if self._conns[shard].poll(1.0):
                kind, payload = self._conns[shard].recv()
                if kind == "error":
                    detail = f": {payload}"
        except (EOFError, OSError):
            pass
        raise RuntimeError(f"shard {shard} worker died{detail}")

    def close(self) -> None:
        # Conns first: a feeder blocked mid-send fails fast instead of
        # waiting on a worker that will never drain the pipe.
        for conn in getattr(self, "_conns", ()):
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for feed_queue in getattr(self, "_queues", ()):
            feed_queue.put(_STOP)
        for thread in getattr(self, "_feeders", ()):
            thread.join(timeout=5)
        for process in getattr(self, "_processes", ()):
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5)
        self._conns = []
        self._processes = []
        self._queues = []
        self._feeders = []


_STRATEGIES = {
    SerialShardStrategy.name: SerialShardStrategy,
    MultiprocessShardStrategy.name: MultiprocessShardStrategy,
}

#: Strategies that live outside this module and register on import.
#: Keeping them lazy preserves the dependency direction (``repro.sim``
#: never hard-imports ``repro.service``) while still letting
#: ``sharded:N:socket`` resolve through the ordinary registry grammar.
_LAZY_STRATEGY_MODULES = {
    "socket": "repro.service.shardsocket",
}


def register_shard_strategy(cls: type[ShardStrategy]) -> type[ShardStrategy]:
    """Register a :class:`ShardStrategy` under ``cls.name`` (decorator-safe)."""
    _STRATEGIES[cls.name] = cls
    return cls


def resolve_shard_strategy(name: str) -> type[ShardStrategy]:
    """Strategy class for a registry-grammar token, loading lazy entries."""
    if name not in _STRATEGIES and name in _LAZY_STRATEGY_MODULES:
        import importlib

        importlib.import_module(_LAZY_STRATEGY_MODULES[name])
    try:
        return _STRATEGIES[name]
    except KeyError:
        known = ", ".join(sorted(set(_STRATEGIES) | set(_LAZY_STRATEGY_MODULES)))
        raise ValueError(
            f"unknown shard strategy {name!r}; known strategies: {known}"
        ) from None


def _fold_shards(shard_maps: list[dict[str, Probe]]) -> dict[str, Probe]:
    """Fold shard probe maps left to right via ``merge_partition``."""
    first, *rest = shard_maps
    for other in rest:
        for label, probe in first.items():
            probe.merge_partition(other[label])
    return first


# ---------------------------------------------------------------------------
# The sharded kernels.
# ---------------------------------------------------------------------------


class _ShardedParams:
    """Shared constructor / registry-parameter parsing of both kernels."""

    def __init__(
        self,
        shards: int = 2,
        strategy: str = "serial",
        resolver: str = "numpy",
    ) -> None:
        shards = int(shards)
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        resolve_shard_strategy(strategy)  # fail fast with the known list
        if resolver not in ("numpy", "compiled"):
            raise ValueError(
                f"unknown shard resolver {resolver!r}; "
                f"known resolvers: compiled, numpy"
            )
        self.shards = shards
        self.strategy = strategy
        self.resolver = resolver

    @classmethod
    def from_param(cls, param: str):
        """Registry-name parameters: ``"4"``, ``"4:process"``,
        ``"4:socket"``, ``"4:compiled"``, ``"4:process:compiled"``.

        A trailing ``compiled`` token selects the compiled departure
        resolver (and, unsized, the compiled coordinator round loop);
        any other token in strategy position is validated as a strategy,
        so ``sharded:2:quantum`` still reports an unknown strategy.
        """
        parts = param.split(":")
        try:
            shards = int(parts[0])
        except ValueError:
            raise ValueError(
                f"invalid shard count {parts[0]!r}; parameterize as "
                f"'sharded:N' or 'sharded:N:serial|process|socket'"
            ) from None
        rest = [token for token in parts[1:] if token]
        resolver = "numpy"
        if rest and rest[-1] == "compiled":
            resolver = "compiled"
            rest = rest[:-1]
        if len(rest) > 1:
            raise ValueError(
                f"too many shard parameters in {param!r}; parameterize as "
                f"'sharded:N[:serial|process|socket][:compiled]'"
            )
        strategy = rest[0] if rest else "serial"
        return cls(shards=shards, strategy=strategy, resolver=resolver)

    def _shard_inits(
        self,
        plan: ShardPlan,
        rates: np.ndarray,
        num_dispatchers: int,
        rounds: int,
        warmup: int,
        sized: bool,
        track_queue_series: bool,
        probe_specs: tuple[ProbeSpec, ...],
    ) -> list[ShardInit]:
        return [
            ShardInit(
                index=index,
                start=lo,
                rates=rates[lo:hi].copy(),
                num_dispatchers=num_dispatchers,
                rounds=rounds,
                warmup=warmup,
                sized=sized,
                track_queue_series=track_queue_series,
                probe_specs=probe_specs,
                resolver=self.resolver,
            )
            for index, (lo, hi) in enumerate(plan.ranges())
        ]

    def _round_kernel(self, sim):
        """Subclass/param seam: an optional whole-block native round loop.

        With the ``compiled`` resolver and live jitted paths, the
        coordinator also runs the compiled whole-block round loop for
        the policies that have one -- same rule as the ``compiled``
        backend, so sharded results stay bit-identical.
        """
        if self.resolver != "compiled":
            return None
        from . import compiled

        if not (compiled.numba_enabled() or compiled._FORCE_STORES):
            return None
        return compiled.compiled_round_kernel_for(sim.policy)

    @staticmethod
    def _assemble_probes(
        config_specs: tuple[ProbeSpec, ...],
        folded: dict[str, Probe],
        coordinator: dict[str, Probe],
    ) -> dict[str, Probe]:
        """Final label -> probe map in the fast kernel's order."""
        probes = {"responses": folded["responses"]}
        if "queue_series" in folded:
            probes["queue_series"] = folded["queue_series"]
        for spec in config_specs:
            label = ProbeSpec.of(spec).label
            probes[label] = folded[label] if label in folded else coordinator[label]
        return probes


@register_backend("sharded")
class ShardedBackend(_ShardedParams, EngineBackend):
    """Server-partitioned fast kernel (see the module docstring).

    The round loop is the fast kernel's, verbatim: identical RNG
    consumption, identical dispatch calls, identical queue arithmetic
    -- only the block resolution and the partitionable probes are
    pushed into the shards.  Bit-identical to ``"fast"`` for
    deterministic policies at every shard count and under either
    strategy.
    """

    name = "sharded"
    description = (
        "server-partitioned fast kernel: per-shard batch stores and probe "
        "sets, folded via Probe.merge_partition; parameterize as "
        "sharded:N[:serial|process|socket] (bit-exact vs fast for deterministic "
        "policies)"
    )

    def run(
        self, sim: "Simulation", controller: RunController | None = None
    ) -> "SimulationResult":
        from .engine import SimulationResult

        config = sim.config
        policy = sim.policy

        n = sim.rates.size
        m = sim.arrivals.num_dispatchers
        plan = ShardPlan.balanced(n, self.shards)
        ranges = plan.ranges()
        shard_specs, coordinator_specs = split_probe_specs(config.probes)
        start_round = 0
        state = None
        if controller is not None:
            start_round = validate_start_round(
                controller.start_round, config.rounds, _CHUNK_ROUNDS
            )
            state = controller.initial_state()
        if state is not None:
            coordinator_probes = state["coordinator_probes"]
            run_state = UnsizedRunState(
                queues=state["queues"],
                total_arrived=state["total_arrived"],
                server_received=state["server_received"],
                server_departed=state["server_departed"],
            )
            shard_states = state["shards"]
        else:
            coordinator_probes = ProbeSet(
                [(spec.label, spec.build()) for spec in coordinator_specs],
                ProbeContext(
                    num_servers=n,
                    num_dispatchers=m,
                    rates=sim.rates,
                    rounds=config.rounds,
                    warmup=config.warmup,
                    sized=False,
                ),
            )
            run_state = UnsizedRunState(
                queues=np.zeros(n, dtype=np.int64),
                total_arrived=0,
                server_received=np.zeros(n, dtype=np.int64),
                server_departed=np.zeros(n, dtype=np.int64),
            )
            shard_states = None
        strategy = resolve_shard_strategy(self.strategy)()

        def consume(block) -> None:
            # The per-block exchange: each shard gets its slice of the
            # admission/completion matrices (its queue slice and series
            # follow from those deltas worker-side).
            for index, (lo, hi) in enumerate(ranges):
                strategy.feed(
                    index,
                    (
                        block.start_round,
                        block.received[:, lo:hi],
                        block.done[:, lo:hi],
                    ),
                )

        def export_state() -> dict:
            return {
                "coordinator_probes": coordinator_probes,
                "queues": run_state.queues,
                "total_arrived": run_state.total_arrived,
                "server_received": run_state.server_received,
                "server_departed": run_state.server_departed,
                "shards": strategy.snapshot(),
            }

        try:
            strategy.start(
                self._shard_inits(
                    plan,
                    sim.rates,
                    m,
                    config.rounds,
                    config.warmup,
                    sized=False,
                    track_queue_series=config.track_queue_series,
                    probe_specs=shard_specs,
                ),
                states=shard_states,
            )
            drive_unsized(
                policy=policy,
                arrivals=sim.arrivals,
                service=sim.service,
                arrival_rng=sim._streams.arrivals,
                departure_rng=sim._streams.departures,
                rounds=config.rounds,
                warmup=config.warmup,
                start_round=start_round,
                state=run_state,
                block_probes=coordinator_probes,
                series=None,  # shard workers record their own slices
                consume=consume,
                controller=controller,
                export_state=export_state,
                round_kernel=self._round_kernel(sim),
            )
            folded = _fold_shards(strategy.finish())
        finally:
            strategy.close()

        probes = self._assemble_probes(
            config.probes, folded, coordinator_probes.as_dict()
        )
        queue_series_probe = probes.get("queue_series")
        return SimulationResult(
            policy_name=policy.name,
            config=config,
            histogram=probes["responses"].histogram,
            queue_series=(
                queue_series_probe.series if queue_series_probe is not None else None
            ),
            total_arrived=run_state.total_arrived,
            total_departed=int(run_state.server_departed.sum()),
            final_queued=int(run_state.queues.sum()),
            final_queues=run_state.queues,
            server_received=run_state.server_received,
            server_departed=run_state.server_departed,
            probes=probes,
        )


_EMPTY_JOBS = np.empty(0, dtype=np.int64)


@register_sized_backend("sharded")
class SizedShardedBackend(_ShardedParams, SizedEngineBackend):
    """Server-partitioned sized fast kernel.

    Mirrors :class:`ShardedBackend` for the unit-denominated engine:
    the coordinator repeats the sized fast kernel's pre-sampling
    (arrival/size interleaving and all) and dispatching exactly, then
    routes each block's jobs -- already sorted server-major -- to the
    owning shard in shard-local server coordinates.  Bit-identical to
    the sized ``"fast"`` kernel for deterministic policies at every
    shard count.
    """

    name = "sharded"
    description = (
        "server-partitioned sized fast kernel: per-shard unit stores and "
        "probe sets, folded via Probe.merge_partition; parameterize as "
        "sharded:N[:serial|process|socket] (bit-exact vs fast for deterministic "
        "policies)"
    )

    def run(
        self, sim: "SizedSimulation", controller: RunController | None = None
    ) -> "SizedSimulationResult":
        from .sized import SizedSimulationResult

        policy = sim.policy

        n = sim.rates.size
        m = sim.arrivals.num_dispatchers
        plan = ShardPlan.balanced(n, self.shards)
        ranges = plan.ranges()
        bounds = np.asarray(plan.bounds, dtype=np.int64)
        shard_specs, coordinator_specs = split_probe_specs(sim.probes)
        start_round = 0
        state = None
        if controller is not None:
            start_round = validate_start_round(
                controller.start_round, sim.rounds, _CHUNK_ROUNDS
            )
            state = controller.initial_state()
        if state is not None:
            coordinator_probes = state["coordinator_probes"]
            run_state = SizedRunState(
                unit_queues=state["unit_queues"],
                total_jobs=state["total_jobs"],
                units_in=state["units_in"],
                units_out=state["units_out"],
            )
            shard_states = state["shards"]
        else:
            coordinator_probes = ProbeSet(
                [(spec.label, spec.build()) for spec in coordinator_specs],
                ProbeContext(
                    num_servers=n,
                    num_dispatchers=m,
                    rates=sim.rates,
                    rounds=sim.rounds,
                    warmup=sim.warmup,
                    sized=True,
                ),
            )
            run_state = SizedRunState(
                unit_queues=np.zeros(n, dtype=np.int64),
                total_jobs=0,
                units_in=0,
                units_out=0,
            )
            shard_states = None
        strategy = resolve_shard_strategy(self.strategy)()

        def consume(block) -> None:
            # Cut the server-major job arrays at the shard bounds; each
            # shard gets its jobs in shard-local server coordinates.
            cuts = np.searchsorted(block.job_servers, bounds)
            for index, (lo, hi) in enumerate(ranges):
                a, b = int(cuts[index]), int(cuts[index + 1])
                strategy.feed(
                    index,
                    (
                        block.start_round,
                        block.received[:, lo:hi],
                        block.done[:, lo:hi],
                        block.job_servers[a:b] - lo,
                        block.job_rounds[a:b],
                        block.job_sizes[a:b],
                    ),
                )

        def export_state() -> dict:
            return {
                "coordinator_probes": coordinator_probes,
                "unit_queues": run_state.unit_queues,
                "total_jobs": run_state.total_jobs,
                "units_in": run_state.units_in,
                "units_out": run_state.units_out,
                "shards": strategy.snapshot(),
            }

        try:
            strategy.start(
                self._shard_inits(
                    plan,
                    sim.rates,
                    m,
                    sim.rounds,
                    sim.warmup,
                    sized=True,
                    track_queue_series=True,
                    probe_specs=shard_specs,
                ),
                states=shard_states,
            )
            drive_sized(
                policy=policy,
                arrivals=sim.arrivals,
                service=sim.service,
                sizes=sim.sizes,
                arrival_rng=sim._streams.arrivals,
                departure_rng=sim._streams.departures,
                rounds=sim.rounds,
                start_round=start_round,
                state=run_state,
                block_probes=coordinator_probes,
                series=None,  # shard workers record their own slices
                collect_received=True,
                consume=consume,
                controller=controller,
                export_state=export_state,
            )
            folded = _fold_shards(strategy.finish())
        finally:
            strategy.close()

        probes = self._assemble_probes(
            sim.probes, folded, coordinator_probes.as_dict()
        )
        return SizedSimulationResult(
            policy_name=policy.name,
            histogram=probes["responses"].histogram,
            queue_series=probes["queue_series"].series,
            total_jobs=run_state.total_jobs,
            total_units_arrived=run_state.units_in,
            total_units_departed=run_state.units_out,
            final_units_queued=int(run_state.unit_queues.sum()),
            probes=probes,
        )
