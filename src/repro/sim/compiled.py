"""The ``compiled`` round kernels: numba-jitted hot paths, graceful fallback.

ROADMAP item 1.  The fast kernels spend their time in two places: the
per-block FIFO departure resolution (:mod:`repro.sim.batchstore` -- a
dozen numpy passes building merged boundary arrays) and, for cheap
deterministic policies, the per-round ``dispatch_round`` Python
overhead.  This module compiles both:

* :class:`CompiledBatchQueueStore` / :class:`CompiledSizedBatchQueueStore`
  subclass the numpy stores and resolve each block with a single jitted
  two-pointer walk per server (:func:`_resolve_unsized` /
  :func:`_resolve_sized`).  The walk emits the **same multiset of
  response records in the same server-major, position-ascending order**
  as the prefix-sum implementation, and leaves the identical carry
  arrays, so the stores are drop-in bit-identical -- checkpoints
  round-trip between them and the numpy stores.
* :func:`compiled_round_kernel_for` provides whole-block native round
  loops for the two queue-oblivious deterministic policies (``rr``,
  ``wrr``): one jitted call advances dispatch state, the queue
  recurrence and the completion matrix for 256 rounds (the
  :class:`repro.sim.blockdriver.RoundKernel` seam).  Integer rotation
  arithmetic and elementwise float64 credit updates reproduce the
  per-round paths bit-for-bit.

**Detection and fallback.**  numba is probed once at import; when it is
missing (or tests force it off via :data:`_FORCE_DISABLED`) every jitted
function is a plain-Python function, the ``compiled`` backends run the
fast kernels' numpy stores, and no warning is emitted -- the backend
stays registered, works, and reports ``jit_active = False``.  The
plain-Python bodies are themselves numba-compatible, so the test suite
exercises the exact compiled control flow even on hosts without numba
(via the stores' ``force`` flag).

Both backends register as ``"compiled"``; the sharded kernels reuse the
pieces through the ``sharded:N[:strategy][:compiled]`` resolver
parameter (compiled shard-side stores plus a compiled coordinator round
kernel where the policy permits).
"""

from __future__ import annotations

import numpy as np

from .backends import FastBackend, register_backend
from .batchstore import BatchQueueStore, SizedBatchQueueStore
from .sizedbackends import SizedFastBackend, register_sized_backend

__all__ = [
    "HAVE_NUMBA",
    "numba_enabled",
    "CompiledBatchQueueStore",
    "CompiledSizedBatchQueueStore",
    "compiled_round_kernel_for",
    "make_shard_store",
    "CompiledBackend",
    "SizedCompiledBackend",
]

try:  # pragma: no cover - exercised as a whole, not per-branch
    import numba as _numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover
    _numba = None
    HAVE_NUMBA = False

#: Test hook: pretend numba is absent (fallback behavior on hosts that
#: have it installed).  Checked at call time, never cached.
_FORCE_DISABLED = False

#: Test hook: make ``sharded:N[:strategy]:compiled`` shard stores and the
#: coordinator round kernel run their compiled control flow un-jitted
#: when numba is absent (serial strategy / in-process workers only).
_FORCE_STORES = False


def numba_enabled() -> bool:
    """True when the jitted paths are live (numba present, not forced off)."""
    return HAVE_NUMBA and not _FORCE_DISABLED


def _maybe_jit(function):
    """``numba.njit`` when available, the plain function otherwise.

    The plain function is the fallback *and* the specification: its body
    is restricted to numba-supported constructs so both variants execute
    the same control flow.
    """
    if HAVE_NUMBA:  # pragma: no cover - jitted only where numba exists
        return _numba.njit(cache=True)(function)
    return function


# ---------------------------------------------------------------------------
# Compiled departure resolution.
# ---------------------------------------------------------------------------


@_maybe_jit
def _resolve_unsized(
    old_rounds,  # carried batch arrival rounds, server-major FIFO
    old_counts,  # carried batch job counts, parallel
    old_lengths,  # (n,) carried batches per server
    received_block,  # (L, n) admissions
    done_block,  # (L, n) completions
    start_round,
    warmup,
):
    """Two-pointer FIFO drain of one block, per server.

    Walking batches (carried first, then admissions in round order)
    against the completion stream visits exactly the elementary segments
    the numpy store's merged-boundary construction enumerates, in the
    same global position order; each segment becomes one response record
    or one carried batch.
    """
    length, n = received_block.shape
    old_total = old_rounds.shape[0]
    num_new = 0
    num_deps = 0
    for i in range(length):
        for s in range(n):
            if received_block[i, s] > 0:
                num_new += 1
            if done_block[i, s] > 0:
                num_deps += 1

    # Merged per-server batch sequences (carried, then new), server-major.
    total_batches = old_total + num_new
    batch_rounds = np.empty(total_batches, np.int64)
    batch_counts = np.empty(total_batches, np.int64)
    batch_start = np.empty(n + 1, np.int64)
    pos = 0
    old_base = 0
    for s in range(n):
        batch_start[s] = pos
        for _ in range(old_lengths[s]):
            batch_rounds[pos] = old_rounds[old_base]
            batch_counts[pos] = old_counts[old_base]
            pos += 1
            old_base += 1
        for i in range(length):
            count = received_block[i, s]
            if count > 0:
                batch_rounds[pos] = start_round + i
                batch_counts[pos] = count
                pos += 1
    batch_start[n] = pos

    # Each emitted record ends at a batch boundary or exhausts one
    # departure round, so their total bounds the record count.
    max_records = total_batches + num_deps
    rec_dep = np.empty(max_records, np.int64)
    rec_time = np.empty(max_records, np.int64)
    rec_count = np.empty(max_records, np.int64)
    rec_server = np.empty(max_records, np.int64)
    carry_rounds = np.empty(total_batches, np.int64)
    carry_counts = np.empty(total_batches, np.int64)
    carry_lengths = np.zeros(n, np.int64)
    r = 0
    c = 0
    for s in range(n):
        dep_i = 0
        dep_left = 0
        dep_round = -1
        for bi in range(batch_start[s], batch_start[s + 1]):
            remaining = batch_counts[bi]
            b_round = batch_rounds[bi]
            while remaining > 0:
                if dep_left == 0:
                    while dep_i < length and done_block[dep_i, s] == 0:
                        dep_i += 1
                    if dep_i == length:
                        break
                    dep_left = done_block[dep_i, s]
                    dep_round = start_round + dep_i
                    dep_i += 1
                take = remaining if remaining < dep_left else dep_left
                remaining -= take
                dep_left -= take
                if dep_round >= warmup:
                    rec_dep[r] = dep_round
                    rec_time[r] = dep_round - b_round + 1
                    rec_count[r] = take
                    rec_server[r] = s
                    r += 1
            if remaining > 0:
                carry_rounds[c] = b_round
                carry_counts[c] = remaining
                carry_lengths[s] += 1
                c += 1
    return (
        rec_dep[:r],
        rec_time[:r],
        rec_count[:r],
        rec_server[:r],
        carry_rounds[:c],
        carry_counts[:c],
        carry_lengths,
    )


@_maybe_jit
def _resolve_sized(
    old_rounds,  # carried job arrival rounds, server-major FIFO
    old_remaining,  # carried job remaining units, parallel
    old_lengths,  # (n,) carried jobs per server
    job_servers,  # block admissions, sorted server-major
    job_rounds,
    job_sizes,
    done_block,  # (L, n) unit completions
    start_round,
    warmup,
):
    """Unit-denominated drain: a job completes when its last unit drains."""
    length, n = done_block.shape
    old_total = old_rounds.shape[0]
    new_total = job_servers.shape[0]
    total_jobs = old_total + new_total

    rounds_merged = np.empty(total_jobs, np.int64)
    units_merged = np.empty(total_jobs, np.int64)
    job_start = np.empty(n + 1, np.int64)
    pos = 0
    old_base = 0
    new_base = 0
    for s in range(n):
        job_start[s] = pos
        for _ in range(old_lengths[s]):
            rounds_merged[pos] = old_rounds[old_base]
            units_merged[pos] = old_remaining[old_base]
            pos += 1
            old_base += 1
        while new_base < new_total and job_servers[new_base] == s:
            rounds_merged[pos] = job_rounds[new_base]
            units_merged[pos] = job_sizes[new_base]
            pos += 1
            new_base += 1
    job_start[n] = pos

    rec_dep = np.empty(total_jobs, np.int64)
    rec_time = np.empty(total_jobs, np.int64)
    rec_server = np.empty(total_jobs, np.int64)
    carry_rounds = np.empty(total_jobs, np.int64)
    carry_units = np.empty(total_jobs, np.int64)
    carry_lengths = np.zeros(n, np.int64)
    r = 0
    c = 0
    for s in range(n):
        dep_i = 0
        dep_left = 0
        dep_round = -1
        for ji in range(job_start[s], job_start[s + 1]):
            need = units_merged[ji]
            b_round = rounds_merged[ji]
            while need > 0:
                if dep_left == 0:
                    while dep_i < length and done_block[dep_i, s] == 0:
                        dep_i += 1
                    if dep_i == length:
                        break
                    dep_left = done_block[dep_i, s]
                    dep_round = start_round + dep_i
                    dep_i += 1
                take = need if need < dep_left else dep_left
                need -= take
                dep_left -= take
            if need == 0:
                if dep_round >= warmup:
                    rec_dep[r] = dep_round
                    rec_time[r] = dep_round - b_round + 1
                    rec_server[r] = s
                    r += 1
            else:
                carry_rounds[c] = b_round
                carry_units[c] = need
                carry_lengths[s] += 1
                c += 1
    return (
        rec_dep[:r],
        rec_time[:r],
        rec_server[:r],
        carry_rounds[:c],
        carry_units[:c],
        carry_lengths,
    )


def _as_block(array: np.ndarray) -> np.ndarray:
    """Contiguous int64 view/copy (shard slices arrive non-contiguous)."""
    return np.ascontiguousarray(array, dtype=np.int64)


class CompiledBatchQueueStore(BatchQueueStore):
    """A :class:`BatchQueueStore` resolved by the jitted two-pointer walk.

    Same state arrays, same records, same carry -- checkpoints pickle
    and restore interchangeably with the numpy store.  When numba is
    unavailable each call falls back to the numpy implementation unless
    ``force`` runs the (plain-Python) compiled control flow anyway,
    which is how the parity tests cover it on numba-less hosts.
    """

    def __init__(self, num_servers: int, force: bool = False) -> None:
        super().__init__(num_servers)
        self.force = bool(force)

    def process_block(
        self,
        start_round: int,
        received_block: np.ndarray,
        done_block: np.ndarray,
        histogram,
        warmup: int = 0,
        response_sink=None,
    ) -> None:
        if not (self.force or numba_enabled()):
            return super().process_block(
                start_round,
                received_block,
                done_block,
                histogram,
                warmup,
                response_sink=response_sink,
            )
        received_block = _as_block(received_block)
        done_block = _as_block(done_block)
        new_totals = received_block.sum(axis=0)
        self._check_capacity_mask(new_totals)
        server_totals = self._jobs + new_totals
        dep_totals = done_block.sum(axis=0)
        if np.any(dep_totals > server_totals):
            raise RuntimeError(
                "batch store drained past its contents; "
                "engine accounting is corrupt"
            )
        if not server_totals.any():
            return
        (
            rec_dep,
            rec_time,
            rec_count,
            rec_server,
            carry_rounds,
            carry_counts,
            carry_lengths,
        ) = _resolve_unsized(
            self._rounds,
            self._counts,
            self._lengths,
            received_block,
            done_block,
            start_round,
            warmup,
        )
        if histogram is not None:
            histogram.record_many(rec_time, rec_count)
        if response_sink is not None:
            response_sink(rec_dep, rec_time, rec_count, rec_server)
        self._rounds = carry_rounds
        self._counts = carry_counts
        self._lengths = carry_lengths
        self._jobs = server_totals - dep_totals


class CompiledSizedBatchQueueStore(SizedBatchQueueStore):
    """A :class:`SizedBatchQueueStore` resolved by the jitted unit walk."""

    def __init__(self, num_servers: int, force: bool = False) -> None:
        super().__init__(num_servers)
        self.force = bool(force)

    def process_block(
        self,
        start_round: int,
        job_servers: np.ndarray,
        job_rounds: np.ndarray,
        job_sizes: np.ndarray,
        done_block: np.ndarray,
        histogram,
        warmup: int = 0,
        response_sink=None,
    ) -> None:
        if not (self.force or numba_enabled()):
            return super().process_block(
                start_round,
                job_servers,
                job_rounds,
                job_sizes,
                done_block,
                histogram,
                warmup,
                response_sink=response_sink,
            )
        n = self._n
        job_servers = np.ascontiguousarray(job_servers, dtype=np.int64)
        job_rounds = np.ascontiguousarray(job_rounds, dtype=np.int64)
        job_sizes = np.ascontiguousarray(job_sizes, dtype=np.int64)
        if not (job_servers.shape == job_rounds.shape == job_sizes.shape):
            raise ValueError("job arrays must be parallel 1-D arrays")
        if job_sizes.size and int(job_sizes.min()) < 1:
            raise ValueError("job sizes must be >= 1")
        if job_servers.size and np.any(np.diff(job_servers) < 0):
            raise ValueError("jobs must be sorted server-major")
        self._check_capacity_mask(job_servers)
        done_block = _as_block(done_block)
        new_units = np.zeros(n, dtype=np.int64)
        if job_sizes.size:
            np.add.at(new_units, job_servers, job_sizes)
        server_units = self._units + new_units
        dep_totals = done_block.sum(axis=0)
        if np.any(dep_totals > server_units):
            raise RuntimeError(
                "sized batch store drained past its contents; "
                "engine accounting is corrupt"
            )
        if not server_units.any():
            return
        (
            rec_dep,
            rec_time,
            rec_server,
            carry_rounds,
            carry_units,
            carry_lengths,
        ) = _resolve_sized(
            self._rounds,
            self._remaining,
            self._lengths,
            job_servers,
            job_rounds,
            job_sizes,
            done_block,
            start_round,
            warmup,
        )
        counts = np.ones(rec_time.size, dtype=np.int64)
        if histogram is not None:
            histogram.record_many(rec_time, counts)
        if response_sink is not None:
            response_sink(rec_dep, rec_time, counts, rec_server)
        self._rounds = carry_rounds
        self._remaining = carry_units
        self._lengths = carry_lengths
        self._units = server_units - dep_totals


def make_shard_store(num_servers: int, sized: bool):
    """The store a ``:compiled``-resolver shard worker should use.

    Compiled stores when the jitted paths are live (or tests force the
    compiled control flow), the plain numpy stores otherwise -- the
    graceful-fallback rule, applied per worker at construction.
    """
    if numba_enabled() or _FORCE_STORES:
        force = _FORCE_STORES
        if sized:
            return CompiledSizedBatchQueueStore(num_servers, force=force)
        return CompiledBatchQueueStore(num_servers, force=force)
    if sized:
        return SizedBatchQueueStore(num_servers)
    return BatchQueueStore(num_servers)


# ---------------------------------------------------------------------------
# Compiled whole-block round loops (the blockdriver.RoundKernel seam).
# ---------------------------------------------------------------------------


@_maybe_jit
def _rr_run_block(batch, capacity, queues, received, done, positions):
    """256 rounds of round-robin dispatch + the queue recurrence, natively.

    Integer rotation arithmetic identical to
    ``RoundRobinPolicy.dispatch`` / ``dispatch_round``: dispatcher ``d``
    hands every server ``k // n`` jobs plus one to each of the ``k % n``
    servers from its carried position.
    """
    length, m = batch.shape
    n = queues.shape[0]
    for i in range(length):
        for d in range(m):
            k = batch[i, d]
            if k == 0:
                continue
            p = positions[d]
            base = k // n
            rem = k - base * n
            if base > 0:
                for s in range(n):
                    received[i, s] += base
            for j in range(rem):
                s = p + j
                if s >= n:
                    s -= n
                received[i, s] += 1
            positions[d] = (p + k) % n
        for s in range(n):
            q = queues[s] + received[i, s]
            cap = capacity[i, s]
            dn = cap if cap < q else q
            done[i, s] = dn
            queues[s] = q - dn


@_maybe_jit
def _wrr_run_block(batch, capacity, queues, received, done, credits, rates, total_weight):
    """256 rounds of smooth weighted round-robin, natively.

    Per job: every credit gains its rate (independent elementwise float64
    adds, bit-equal to the numpy vectorized update), the first-largest
    credit wins (strict ``>`` scan == ``np.argmax``) and pays the total
    weight -- exactly ``WeightedRoundRobinPolicy.dispatch``.
    """
    length, m = batch.shape
    n = queues.shape[0]
    for i in range(length):
        for d in range(m):
            k = batch[i, d]
            for _ in range(k):
                for s in range(n):
                    credits[d, s] += rates[s]
                best = 0
                best_credit = credits[d, 0]
                for s in range(1, n):
                    if credits[d, s] > best_credit:
                        best_credit = credits[d, s]
                        best = s
                credits[d, best] -= total_weight
                received[i, best] += 1
        for s in range(n):
            q = queues[s] + received[i, s]
            cap = capacity[i, s]
            dn = cap if cap < q else q
            done[i, s] = dn
            queues[s] = q - dn


class _RoundRobinBlockKernel:
    """RoundKernel adapter owning ``rr``'s carried rotation positions."""

    def __init__(self, policy) -> None:
        self._policy = policy

    def run_block(self, batch, capacity, queues, received, done) -> None:
        _rr_run_block(
            _as_block(batch),
            _as_block(capacity),
            queues,
            received,
            done,
            self._policy._position,
        )


class _WeightedRoundRobinBlockKernel:
    """RoundKernel adapter owning ``wrr``'s carried credit matrix."""

    def __init__(self, policy) -> None:
        self._policy = policy

    def run_block(self, batch, capacity, queues, received, done) -> None:
        _wrr_run_block(
            _as_block(batch),
            _as_block(capacity),
            queues,
            received,
            done,
            self._policy._credits,
            self._policy.rates,
            self._policy._total_weight,
        )


def compiled_round_kernel_for(policy):
    """A whole-block kernel for ``policy``, or ``None``.

    Exact-type checks: a subclass may override hooks or dispatch
    behavior the kernels hard-code, so only the two known
    queue-oblivious deterministic classes qualify.
    """
    from repro.policies.round_robin import (
        RoundRobinPolicy,
        WeightedRoundRobinPolicy,
    )

    if type(policy) is RoundRobinPolicy:
        return _RoundRobinBlockKernel(policy)
    if type(policy) is WeightedRoundRobinPolicy:
        return _WeightedRoundRobinBlockKernel(policy)
    return None


# ---------------------------------------------------------------------------
# The registered backends.
# ---------------------------------------------------------------------------


@register_backend("compiled")
class CompiledBackend(FastBackend):
    """The fast kernel with jitted departure resolution and block dispatch.

    Identical round loop (it *is* the shared block driver), so results
    are bit-identical to ``"fast"`` for every deterministic policy and
    every policy on the base-class dispatch fallback.  When numba is
    missing the backend still registers and runs -- the store delegates
    to the numpy resolver and no round kernel is installed, making it
    the fast kernel under another name (``jit_active`` says which).
    """

    name = "compiled"
    description = (
        "numba-jitted kernel: compiled FIFO departure resolution plus "
        "whole-block native dispatch for rr/wrr; bit-exact vs fast, "
        "warning-free fallback to the fast kernel when numba is missing"
    )

    #: Test hook (per instance): run the compiled control flow un-jitted
    #: even when numba is absent.
    force = False

    @property
    def jit_active(self) -> bool:
        """True when this backend's hot paths are actually jitted."""
        return numba_enabled()

    def _active(self) -> bool:
        return self.force or numba_enabled()

    def _make_store(self, num_servers: int) -> CompiledBatchQueueStore:
        return CompiledBatchQueueStore(num_servers, force=self.force)

    def _round_kernel(self, sim):
        if not self._active():
            return None
        return compiled_round_kernel_for(sim.policy)


@register_sized_backend("compiled")
class SizedCompiledBackend(SizedFastBackend):
    """The sized fast kernel with jitted per-job departure resolution.

    The sized round loop cannot batch dispatch across rounds (job sizes
    bind to per-``(dispatcher, server)`` cells), so the compiled win is
    the store; everything else is the shared driver, bit-identical to
    the sized ``"fast"`` kernel.
    """

    name = "compiled"
    description = (
        "numba-jitted sized kernel: compiled per-job FIFO departure "
        "resolution on the unit axis; bit-exact vs fast, warning-free "
        "fallback to the fast kernel when numba is missing"
    )

    force = False

    @property
    def jit_active(self) -> bool:
        """True when this backend's hot paths are actually jitted."""
        return numba_enabled()

    def _make_store(self, num_servers: int) -> CompiledSizedBatchQueueStore:
        return CompiledSizedBatchQueueStore(num_servers, force=self.force)
