"""FIFO server queues with batch-compressed storage.

All jobs a server receives in the same round are interchangeable for
response-time purposes (same arrival round, FIFO service, arbitrary
intra-round order per the model's footnote 3), so a queue is stored as a
deque of ``[arrival_round, count]`` cells rather than one entry per job.
Admitting a round's batch is O(1) and completing ``c`` jobs touches at most
``O(#distinct arrival rounds drained)`` cells -- the simulator's memory and
time stay bounded by rounds, not by jobs.
"""

from __future__ import annotations

from collections import deque

from .metrics import ResponseTimeHistogram

__all__ = ["ServerQueue"]


class ServerQueue:
    """A single server's FIFO queue of pending jobs.

    Attributes
    ----------
    length:
        Current number of queued jobs (kept consistent by the methods).
    """

    __slots__ = ("_batches", "length")

    def __init__(self) -> None:
        self._batches: deque[list[int]] = deque()
        self.length = 0

    def admit(self, round_index: int, count: int) -> None:
        """Append ``count`` jobs that arrived in round ``round_index``."""
        if count <= 0:
            return
        self._batches.append([round_index, count])
        self.length += count

    def complete(
        self,
        capacity: int,
        now: int,
        histogram: ResponseTimeHistogram | None,
    ) -> int:
        """Serve up to ``capacity`` jobs FIFO; record their response times.

        A job arriving in round ``t`` and departing in round ``now`` spent
        ``now - t + 1`` rounds in the system (the minimum is one round:
        arrive, get dispatched, get served).

        Parameters
        ----------
        capacity:
            ``c_s(t)``, the number of jobs the server can finish this round.
        now:
            Current round index.
        histogram:
            Destination for response-time samples; ``None`` discards them
            (used during warm-up).

        Returns
        -------
        int
            Number of jobs actually completed (``<= capacity``).
        """
        if capacity <= 0 or self.length == 0:
            return 0
        remaining = min(int(capacity), self.length)
        completed = remaining
        batches = self._batches
        while remaining > 0:
            head = batches[0]
            take = head[1] if head[1] <= remaining else remaining
            if histogram is not None:
                histogram.record(now - head[0] + 1, take)
            remaining -= take
            if take == head[1]:
                batches.popleft()
            else:
                head[1] -= take
        self.length -= completed
        return completed

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ServerQueue length={self.length} batches={len(self._batches)}>"
