"""The synchronous-round simulation engine (the model of Section 2).

Each round has three phases, executed for ``config.rounds`` rounds:

1. **Arrivals** -- the arrival process produces each dispatcher's batch.
2. **Dispatching** -- every dispatcher with a non-empty batch independently
   maps its jobs to servers through the policy, all against the same
   start-of-round queue snapshot.
3. **Departures** -- the service process produces each server's capacity;
   servers complete jobs FIFO and response times are recorded.

The engine maintains exact job accounting (arrived = departed + queued,
asserted in tests) and draws workload randomness from streams that are
independent of the policy stream, so runs with the same ``seed`` but
different policies experience identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.policies.base import Policy, SystemContext

from .arrivals import ArrivalProcess
from .metrics import QueueLengthSeries, ResponseTimeHistogram
from .seeding import spawn_streams
from .server import ServerQueue
from .service import ServiceProcess

__all__ = ["SimulationConfig", "SimulationResult", "Simulation", "simulate"]


@dataclass(frozen=True)
class SimulationConfig:
    """Run-length and instrumentation knobs for one simulation.

    Attributes
    ----------
    rounds:
        Number of rounds to simulate (the paper uses 1e5).
    warmup:
        Response times of jobs *completing* during the first ``warmup``
        rounds are discarded (queue accounting still includes them).  The
        paper reports over the full run, hence the default 0.
    seed:
        Master seed; expands into independent arrival/departure/policy
        streams (see :mod:`repro.sim.seeding`).
    track_queue_series:
        Record the per-round total queue length (cheap; needed for
        stability diagnostics).
    """

    rounds: int = 10_000
    warmup: int = 0
    seed: int = 0
    track_queue_series: bool = True

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not 0 <= self.warmup < self.rounds:
            raise ValueError("warmup must be in [0, rounds)")


@dataclass
class SimulationResult:
    """Everything measured in one run."""

    policy_name: str
    config: SimulationConfig
    histogram: ResponseTimeHistogram
    queue_series: QueueLengthSeries | None
    total_arrived: int
    total_departed: int
    final_queued: int
    final_queues: np.ndarray = field(repr=False)
    #: Jobs each server received / completed over the whole run.
    server_received: np.ndarray | None = field(default=None, repr=False)
    server_departed: np.ndarray | None = field(default=None, repr=False)

    @property
    def mean_response_time(self) -> float:
        """Average response time over recorded (post-warmup) jobs."""
        return self.histogram.mean()

    def utilization(self, rates: np.ndarray) -> np.ndarray:
        """Per-server utilization: completed work over offered capacity.

        ``departed_s / (mu_s * rounds)`` -- the fraction of each server's
        expected capacity that did useful work.  Low utilization on fast
        servers is the under-utilization failure mode the paper ascribes
        to heterogeneity-oblivious policies (Section 3.1).
        """
        if self.server_departed is None:
            raise ValueError("per-server accounting was not recorded")
        rates = np.asarray(rates, dtype=np.float64)
        return self.server_departed / (rates * self.config.rounds)

    def summary(self) -> dict[str, float]:
        """Headline numbers for tables: mean, p95/p99/p999, max."""
        hist = self.histogram
        return {
            "mean": hist.mean(),
            "p50": float(hist.percentile(0.50)),
            "p95": float(hist.percentile(0.95)),
            "p99": float(hist.percentile(0.99)),
            "p999": float(hist.percentile(0.999)),
            "max": float(hist.max_response_time),
        }


class Simulation:
    """Binds a policy to workload processes and runs the round loop."""

    def __init__(
        self,
        rates: np.ndarray,
        policy: Policy,
        arrivals: ArrivalProcess,
        service: ServiceProcess,
        config: SimulationConfig | None = None,
    ) -> None:
        self.rates = np.asarray(rates, dtype=np.float64)
        self.config = config or SimulationConfig()
        if service.num_servers != self.rates.size:
            raise ValueError(
                f"service process drives {service.num_servers} servers "
                f"but {self.rates.size} rates were given"
            )
        self.policy = policy
        self.arrivals = arrivals
        self.service = service
        self._streams = spawn_streams(self.config.seed)
        policy.bind(
            SystemContext(
                rates=self.rates,
                num_dispatchers=arrivals.num_dispatchers,
                rng=self._streams.policy,
            )
        )
        arrivals.reset()
        service.reset()

    def run(self) -> SimulationResult:
        """Execute all rounds and return the collected metrics."""
        config = self.config
        policy = self.policy
        arrivals = self.arrivals
        service = self.service
        arrival_rng = self._streams.arrivals
        departure_rng = self._streams.departures

        n = self.rates.size
        m = arrivals.num_dispatchers
        servers = [ServerQueue() for _ in range(n)]
        queues = np.zeros(n, dtype=np.int64)
        histogram = ResponseTimeHistogram()
        series = (
            QueueLengthSeries(rounds_hint=config.rounds)
            if config.track_queue_series
            else None
        )
        total_arrived = 0
        total_departed = 0
        server_received = np.zeros(n, dtype=np.int64)
        server_departed = np.zeros(n, dtype=np.int64)

        for t in range(config.rounds):
            # Phase 1: arrivals.
            batch = arrivals.sample(arrival_rng, t)
            round_total = int(batch.sum())
            total_arrived += round_total

            # Phase 2: dispatching (independent decisions, shared snapshot).
            policy.begin_round(t, queues)
            if round_total:
                policy.observe_total_arrivals(round_total)
                received = np.zeros(n, dtype=np.int64)
                for d in range(m):
                    k = int(batch[d])
                    if k == 0:
                        continue
                    counts = policy.dispatch(d, k)
                    received += counts
                for s in np.flatnonzero(received):
                    servers[s].admit(t, int(received[s]))
                queues += received
                server_received += received

            # Phase 3: departures.
            capacities = service.sample(departure_rng, t)
            sink = histogram if t >= config.warmup else None
            busy = np.flatnonzero((queues > 0) & (capacities > 0))
            for s in busy:
                done = servers[s].complete(int(capacities[s]), t, sink)
                queues[s] -= done
                total_departed += done
                server_departed[s] += done

            policy.end_round(t, queues)
            if series is not None:
                series.record(int(queues.sum()))

        return SimulationResult(
            policy_name=policy.name,
            config=config,
            histogram=histogram,
            queue_series=series,
            total_arrived=total_arrived,
            total_departed=total_departed,
            final_queued=int(queues.sum()),
            final_queues=queues,
            server_received=server_received,
            server_departed=server_departed,
        )


def simulate(
    rates: np.ndarray,
    policy: Policy,
    arrivals: ArrivalProcess,
    service: ServiceProcess,
    config: SimulationConfig | None = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulation`."""
    return Simulation(rates, policy, arrivals, service, config).run()
