"""The synchronous-round simulation engine (the model of Section 2).

Each round has three phases, executed for ``config.rounds`` rounds:

1. **Arrivals** -- the arrival process produces each dispatcher's batch.
2. **Dispatching** -- every dispatcher with a non-empty batch independently
   maps its jobs to servers through the policy, all against the same
   start-of-round queue snapshot.
3. **Departures** -- the service process produces each server's capacity;
   servers complete jobs FIFO and response times are recorded.

The engine maintains exact job accounting (arrived = departed + queued,
asserted in tests) and draws workload randomness from streams that are
independent of the policy stream, so runs with the same ``seed`` but
different policies experience identical workloads.

The round loop itself is pluggable: :class:`SimulationConfig.backend`
names a round kernel from the :mod:`repro.sim.backends` registry
(``"reference"`` -- the bit-exact per-object loop, the default -- or
``"fast"`` -- the vectorized batch kernel).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.policies.base import Policy, SystemContext

from .arrivals import ArrivalProcess
from .metrics import QueueLengthSeries, ResponseTimeHistogram
from .probes import Probe, ProbeSpec
from .seeding import spawn_streams
from .service import ServiceProcess

__all__ = ["SimulationConfig", "SimulationResult", "Simulation", "simulate"]


@dataclass(frozen=True)
class SimulationConfig:
    """Run-length and instrumentation knobs for one simulation.

    Attributes
    ----------
    rounds:
        Number of rounds to simulate (the paper uses 1e5).
    warmup:
        Response times of jobs *completing* during the first ``warmup``
        rounds are discarded (queue accounting still includes them).  The
        paper reports over the full run, hence the default 0.
    seed:
        Master seed; expands into independent arrival/departure/policy
        streams (see :mod:`repro.sim.seeding`).
    track_queue_series:
        Record the per-round total queue length (cheap; needed for
        stability diagnostics).
    backend:
        Engine-backend registry name (see :mod:`repro.sim.backends`).
        ``"reference"`` is the original bit-exact loop; ``"fast"`` is
        the vectorized round kernel; ``"sharded:N"`` is the
        server-partitioned kernel (:mod:`repro.sim.sharding`).
        Resolved when :meth:`Simulation.run` is called, so unknown
        names fail with the list of known backends.
    probes:
        Extra observability probes for this run, as registry names or
        :class:`~repro.sim.probes.ProbeSpec` objects (see
        :mod:`repro.sim.probes`; ``repro probes`` lists them).  The
        default collectors (response histogram, queue series) are
        always present; these are appended and surface their summaries
        under ``<label>.<key>`` metric keys and ``result.probes``.
    scenario:
        Optional scenario spec string ``NAME[:k=v,...]`` (see
        :mod:`repro.scenarios`; ``repro scenarios`` lists them).
        Applied once at :class:`Simulation` construction: the scenario
        may wrap the arrival process (nonstationary rates) and/or the
        policy (server churn).  ``None`` -- the default -- leaves the
        stationary code path byte-for-byte untouched.
    """

    rounds: int = 10_000
    warmup: int = 0
    seed: int = 0
    track_queue_series: bool = True
    backend: str = "reference"
    probes: tuple[ProbeSpec, ...] = ()
    scenario: str | None = None

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not 0 <= self.warmup < self.rounds:
            raise ValueError("warmup must be in [0, rounds)")
        if not self.backend:
            raise ValueError("backend must be a non-empty registry name")
        if self.scenario is not None and not self.scenario:
            raise ValueError("scenario must be a non-empty spec string or None")
        object.__setattr__(
            self, "probes", tuple(ProbeSpec.of(p) for p in self.probes)
        )


@dataclass
class SimulationResult:
    """Everything measured in one run."""

    policy_name: str
    config: SimulationConfig
    histogram: ResponseTimeHistogram
    queue_series: QueueLengthSeries | None
    total_arrived: int
    total_departed: int
    final_queued: int
    final_queues: np.ndarray = field(repr=False)
    #: Jobs each server received / completed over the whole run.
    server_received: np.ndarray | None = field(default=None, repr=False)
    server_departed: np.ndarray | None = field(default=None, repr=False)
    #: Label -> probe, every probe of the run (defaults + extras).
    probes: dict[str, Probe] = field(default_factory=dict, repr=False, compare=False)

    @property
    def mean_response_time(self) -> float:
        """Average response time over recorded (post-warmup) jobs."""
        return self.histogram.mean()

    def utilization(self, rates: np.ndarray) -> np.ndarray:
        """Per-server utilization: completed work over offered capacity.

        ``departed_s / (mu_s * rounds)`` -- the fraction of each server's
        expected capacity that did useful work.  Low utilization on fast
        servers is the under-utilization failure mode the paper ascribes
        to heterogeneity-oblivious policies (Section 3.1).
        """
        if self.server_departed is None:
            raise ValueError("per-server accounting was not recorded")
        rates = np.asarray(rates, dtype=np.float64)
        return self.server_departed / (rates * self.config.rounds)

    def summary(self) -> dict[str, float]:
        """Headline numbers for tables: mean, p95/p99/p999, max."""
        hist = self.histogram
        return {
            "mean": hist.mean(),
            "p50": float(hist.percentile(0.50)),
            "p95": float(hist.percentile(0.95)),
            "p99": float(hist.percentile(0.99)),
            "p999": float(hist.percentile(0.999)),
            "max": float(hist.max_response_time),
        }

    def probe_summaries(self) -> dict[str, dict[str, float]]:
        """Label -> summary for every probe carried by this run."""
        return {label: probe.summary() for label, probe in self.probes.items()}


class Simulation:
    """Binds a policy to workload processes and runs the round loop."""

    def __init__(
        self,
        rates: np.ndarray,
        policy: Policy,
        arrivals: ArrivalProcess,
        service: ServiceProcess,
        config: SimulationConfig | None = None,
    ) -> None:
        self.rates = np.asarray(rates, dtype=np.float64)
        self.config = config or SimulationConfig()
        if service.num_servers != self.rates.size:
            raise ValueError(
                f"service process drives {service.num_servers} servers "
                f"but {self.rates.size} rates were given"
            )
        if self.config.scenario is not None:
            # Applied before bind and before the objects are stored, so
            # run manifests pickle the wrapped policy/arrivals and every
            # kernel (and resume) sees the identical reshaped pair.
            from repro.scenarios import apply_scenario

            policy, arrivals = apply_scenario(
                self.config.scenario, policy, arrivals, self.rates.size
            )
        self.policy = policy
        self.arrivals = arrivals
        self.service = service
        self._streams = spawn_streams(self.config.seed)
        policy.bind(
            SystemContext(
                rates=self.rates,
                num_dispatchers=arrivals.num_dispatchers,
                rng=self._streams.policy,
            )
        )
        arrivals.reset()
        service.reset()

    def run(self, controller=None) -> SimulationResult:
        """Execute all rounds via the configured backend (see ``backends``).

        ``controller`` is the optional run-lifecycle seam
        (:class:`repro.sim.lifecycle.RunController`): the checkpointing
        orchestrator in :mod:`repro.runs` uses it to resume mid-run and
        to export block-aligned state.
        """
        from .backends import make_backend

        return make_backend(self.config.backend).run(self, controller)


def simulate(
    rates: np.ndarray,
    policy: Policy,
    arrivals: ArrivalProcess,
    service: ServiceProcess,
    config: SimulationConfig | None = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulation`."""
    return Simulation(rates, policy, arrivals, service, config).run()
