"""Array-backed FIFO batch storage, resolved one round-block at a time.

The reference engine keeps one :class:`repro.sim.server.ServerQueue`
(a deque of ``[arrival_round, count]`` cells) per server and drains them
one Python call per server per round.  :class:`BatchQueueStore` holds
the same information for the whole pool as flat server-major arrays --
a structure of ``(arrival_round, count)`` pairs -- and exploits that a
round's *queue dynamics* need only the per-server totals: the engine can
run a whole block of rounds updating ``queues += received - done`` and
hand the store the block's ``(rounds, servers)`` admission and
completion matrices afterwards.  FIFO response times are then recovered
for every server at once by a prefix-sum argument:

* Within one server, jobs occupy FIFO *positions* ``1..N``; batch ``j``
  covers the position interval ``(B_{j-1}, B_j]`` of the cumulative
  batch counts, and the departures of round ``u`` cover
  ``(D_{u-1}, D_u]`` of the cumulative completion counts.
* Laying the servers' position axes end-to-end turns both families into
  global sorted boundary sequences; merging them decomposes the block's
  completions into segments, each belonging to exactly one batch and
  one departure round -- precisely the ``(response_time, count)`` pairs
  the reference engine records one at a time.
* Segments not covered by any departure (guarded by per-server sentinel
  boundaries) are the carry: batches still queued when the block ends,
  re-stored in server-major FIFO order for the next block.

Total work per block is a handful of numpy operations of size
O(batches + completions) -- the same asymptotic count as the pairs the
reference records -- with none of the per-round small-array overhead.
The result is bit-identical to draining the reference queues: both
produce the same multiset of (response time, count) records and the
same leftover batches.

:class:`SizedBatchQueueStore` is the unit-denominated analog for the
sized-job engine (:mod:`repro.sim.sized`): the FIFO position axis counts
*work units* instead of jobs, each pending entry is one job ``(arrival
round, remaining units)``, and a job's response time is attributed to
the round its *last* unit drains -- one ``searchsorted`` of the jobs'
cumulative unit boundaries into the block's merged departure boundaries
recovers every completion at once.
"""

from __future__ import annotations

import numpy as np

from .metrics import ResponseTimeHistogram

__all__ = ["BatchQueueStore", "SizedBatchQueueStore"]


class BatchQueueStore:
    """Pending ``(arrival_round, count)`` batches for ``n`` servers.

    State between blocks is three flat arrays: per-server batch counts
    and arrival rounds (server-major, FIFO within server) plus the
    per-server batch- and job-totals.  :meth:`process_block` advances
    the store over a block of rounds given the block's admission and
    completion matrices.
    """

    def __init__(self, num_servers: int) -> None:
        if num_servers < 1:
            raise ValueError("need at least one server")
        self._n = int(num_servers)
        self._rounds = np.empty(0, dtype=np.int64)
        self._counts = np.empty(0, dtype=np.int64)
        self._lengths = np.zeros(self._n, dtype=np.int64)
        self._jobs = np.zeros(self._n, dtype=np.int64)
        self._capacity_mask: np.ndarray | None = None

    # -- state inspection (tests, debugging) -------------------------------

    @property
    def num_servers(self) -> int:
        return self._n

    def batch_counts(self) -> np.ndarray:
        """Number of pending batches per server."""
        return self._lengths.copy()

    def queued_jobs(self) -> np.ndarray:
        """Total queued jobs per server (sum of pending batch counts)."""
        return self._jobs.copy()

    # -- capacity mask (server churn) --------------------------------------

    def capacity_mask(self) -> np.ndarray | None:
        """The availability mask in force, or ``None`` (full fleet)."""
        # getattr: checkpoints written before churn existed lack the slot.
        return getattr(self, "_capacity_mask", None)

    def set_capacity_mask(self, mask: np.ndarray | None) -> None:
        """Stamp the block's churn mask (``True`` = accepts dispatches).

        Masked servers may still *drain* -- departures are legal on any
        server holding work -- but :meth:`process_block` rejects blocks
        that admit jobs to them, turning a churn-adapter bug into a loud
        corruption error instead of silently wrong results.  The mask is
        a plain attribute, so checkpoints pickle and restore it.
        """
        if mask is None:
            self._capacity_mask = None
            return
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._n,):
            raise ValueError(
                f"capacity mask has shape {mask.shape}, expected ({self._n},)"
            )
        self._capacity_mask = mask

    def _check_capacity_mask(self, received_totals: np.ndarray) -> None:
        mask = self.capacity_mask()
        if mask is not None and np.any(received_totals[~mask]):
            raise RuntimeError(
                "batch store admitted jobs to churn-masked servers; "
                "the churn adapter failed to redirect them"
            )

    # -- block resolution --------------------------------------------------

    def process_block(
        self,
        start_round: int,
        received_block: np.ndarray,
        done_block: np.ndarray,
        histogram: ResponseTimeHistogram | None,
        warmup: int = 0,
        response_sink=None,
    ) -> None:
        """Advance the store over rounds ``start_round .. start_round+L-1``.

        Parameters
        ----------
        received_block:
            ``(L, n)`` jobs admitted per round per server (round ``t``'s
            arrivals are FIFO-behind everything queued before it).
        done_block:
            ``(L, n)`` jobs completed per round per server.  The engine
            guarantees the per-round feasibility ``done <= queued``;
            block totals are re-checked here as a corruption guard.
        histogram:
            Destination for the response times ``depart - arrive + 1``
            of every completion in the block; ``None`` discards them.
        warmup:
            Completions in rounds ``< warmup`` are not recorded (queue
            accounting still includes them), matching the reference
            engine's per-round sink gating.
        response_sink:
            Optional callable ``(departure_rounds, times, counts,
            servers)`` receiving the same post-warmup records the
            histogram gets, stamped with the serving server of each
            record (the probe feed; see :mod:`repro.sim.probes`).
        """
        n = self._n
        new_totals = received_block.sum(axis=0)
        self._check_capacity_mask(new_totals)
        server_totals = self._jobs + new_totals
        dep_totals = done_block.sum(axis=0)
        if np.any(dep_totals > server_totals):
            raise RuntimeError(
                "batch store drained past its contents; "
                "engine accounting is corrupt"
            )
        if not server_totals.any():
            return

        # Batch sequence per server: carried batches first, then the
        # block's admissions in round order (server-major throughout).
        received_by_server = received_block.T
        new_srv, new_col = np.nonzero(received_by_server)
        new_counts = received_by_server[new_srv, new_col]
        new_rounds = start_round + new_col
        new_lengths = np.bincount(new_srv, minlength=n)
        old_lengths = self._lengths
        total_lengths = old_lengths + new_lengths
        num_batches = int(total_lengths.sum())
        batch_rounds = np.empty(num_batches, dtype=np.int64)
        batch_counts = np.empty(num_batches, dtype=np.int64)
        dest_base = np.cumsum(total_lengths) - total_lengths
        old_total = self._rounds.size
        if old_total:
            old_base = np.cumsum(old_lengths) - old_lengths
            old_dest = (
                np.repeat(dest_base, old_lengths)
                + np.arange(old_total)
                - np.repeat(old_base, old_lengths)
            )
            batch_rounds[old_dest] = self._rounds
            batch_counts[old_dest] = self._counts
        if new_counts.size:
            new_base = np.cumsum(new_lengths) - new_lengths
            new_dest = (
                np.repeat(dest_base + old_lengths, new_lengths)
                + np.arange(new_counts.size)
                - np.repeat(new_base, new_lengths)
            )
            batch_rounds[new_dest] = new_rounds
            batch_counts[new_dest] = new_counts
        batch_server = np.repeat(np.arange(n), total_lengths)

        # Global position axis: server s occupies the half-open interval
        # (server_base[s], server_base[s] + server_totals[s]].
        server_base = np.cumsum(server_totals) - server_totals
        batch_ends = np.cumsum(batch_counts)

        # Departure boundaries on the same axis, plus one sentinel per
        # server with jobs left over so every position maps to either a
        # departure round or "still queued".
        done_by_server = done_block.T
        dep_srv, dep_col = np.nonzero(done_by_server)
        dep_counts = done_by_server[dep_srv, dep_col]
        dep_base = np.cumsum(dep_totals) - dep_totals
        dep_ends = (
            server_base[dep_srv] + np.cumsum(dep_counts) - dep_base[dep_srv]
        )
        leftover_jobs = server_totals - dep_totals
        sentinel_srv = np.flatnonzero(leftover_jobs)
        sentinel_ends = server_base[sentinel_srv] + server_totals[sentinel_srv]
        num_deps = dep_ends.size
        all_dep_ends = np.concatenate([dep_ends, sentinel_ends])
        all_dep_rounds = np.concatenate(
            [
                start_round + dep_col,
                np.zeros(sentinel_srv.size, dtype=np.int64),
            ]
        )
        still_queued = np.concatenate(
            [
                np.zeros(num_deps, dtype=bool),
                np.ones(sentinel_srv.size, dtype=bool),
            ]
        )
        order = np.argsort(all_dep_ends, kind="stable")
        all_dep_ends = all_dep_ends[order]
        all_dep_rounds = all_dep_rounds[order]
        still_queued = still_queued[order]

        # Merge both boundary families into elementary segments; each
        # non-empty segment lies in exactly one batch and one departure
        # interval (duplicate boundaries yield empty segments, dropped).
        ends = np.sort(np.concatenate([batch_ends, all_dep_ends]))
        starts = np.concatenate([[0], ends[:-1]])
        seg_len = ends - starts
        nonempty = seg_len > 0
        starts = starts[nonempty]
        seg_len = seg_len[nonempty]
        seg_batch = np.searchsorted(batch_ends, starts, side="right")
        seg_dep = np.searchsorted(all_dep_ends, starts, side="right")

        if histogram is not None or response_sink is not None:
            dep_round = all_dep_rounds[seg_dep]
            record = ~still_queued[seg_dep] & (dep_round >= warmup)
            times = dep_round[record] - batch_rounds[seg_batch[record]] + 1
            counts = seg_len[record]
            if histogram is not None:
                histogram.record_many(times, counts)
            if response_sink is not None:
                response_sink(
                    dep_round[record],
                    times,
                    counts,
                    batch_server[seg_batch[record]],
                )

        # Segments mapped to a sentinel are the carry; global segment
        # order is server-major FIFO, and each pending batch contributes
        # at most one segment (no departure boundary splits it), so the
        # carry stays batch-granular.
        left = still_queued[seg_dep]
        left_batches = seg_batch[left]
        self._rounds = batch_rounds[left_batches]
        self._counts = seg_len[left]
        self._lengths = np.bincount(batch_server[left_batches], minlength=n)
        self._jobs = leftover_jobs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BatchQueueStore servers={self._n} "
            f"batches={int(self._lengths.sum())} "
            f"jobs={int(self._jobs.sum())}>"
        )


class SizedBatchQueueStore:
    """Pending sized jobs for ``n`` servers, on a work-unit position axis.

    The sized engine's analog of :class:`BatchQueueStore`: each pending
    entry is one job ``(arrival_round, remaining_units)``, kept
    server-major in FIFO order, and the per-server position axis is
    denominated in work units.  :meth:`process_block` advances the store
    over a block of rounds given the block's admitted jobs and the
    ``(rounds, servers)`` matrix of per-round unit completions, recording
    each job's response time at the round its *last* unit drains --
    exactly the semantics of
    :meth:`repro.sim.sized.SizedServerQueue.complete`, including partial
    service of the head job across block boundaries.
    """

    def __init__(self, num_servers: int) -> None:
        if num_servers < 1:
            raise ValueError("need at least one server")
        self._n = int(num_servers)
        self._rounds = np.empty(0, dtype=np.int64)
        self._remaining = np.empty(0, dtype=np.int64)
        self._lengths = np.zeros(self._n, dtype=np.int64)
        self._units = np.zeros(self._n, dtype=np.int64)
        self._capacity_mask: np.ndarray | None = None

    # -- state inspection (tests, debugging) -------------------------------

    @property
    def num_servers(self) -> int:
        return self._n

    def job_counts(self) -> np.ndarray:
        """Number of pending jobs per server."""
        return self._lengths.copy()

    def queued_units(self) -> np.ndarray:
        """Total queued work units per server (head jobs may be partial)."""
        return self._units.copy()

    # -- capacity mask (server churn) --------------------------------------

    def capacity_mask(self) -> np.ndarray | None:
        """The availability mask in force, or ``None`` (full fleet)."""
        return getattr(self, "_capacity_mask", None)

    def set_capacity_mask(self, mask: np.ndarray | None) -> None:
        """Stamp the block's churn mask, as in :class:`BatchQueueStore`."""
        if mask is None:
            self._capacity_mask = None
            return
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._n,):
            raise ValueError(
                f"capacity mask has shape {mask.shape}, expected ({self._n},)"
            )
        self._capacity_mask = mask

    def _check_capacity_mask(self, job_servers: np.ndarray) -> None:
        mask = self.capacity_mask()
        if mask is not None and job_servers.size and np.any(~mask[job_servers]):
            raise RuntimeError(
                "sized batch store admitted jobs to churn-masked servers; "
                "the churn adapter failed to redirect them"
            )

    # -- block resolution --------------------------------------------------

    def process_block(
        self,
        start_round: int,
        job_servers: np.ndarray,
        job_rounds: np.ndarray,
        job_sizes: np.ndarray,
        done_block: np.ndarray,
        histogram: ResponseTimeHistogram | None,
        warmup: int = 0,
        response_sink=None,
    ) -> None:
        """Advance the store over rounds ``start_round .. start_round+L-1``.

        Parameters
        ----------
        job_servers, job_rounds, job_sizes:
            The block's admitted jobs as parallel flat arrays, sorted
            server-major and, within a server, in admission order
            (arrival round ascending, then dispatcher order -- the order
            :meth:`repro.sim.sized.SizedServerQueue.admit` sees them).
        done_block:
            ``(L, n)`` work units completed per round per server.  The
            engine guarantees per-round feasibility ``done <= queued``;
            block totals are re-checked here as a corruption guard.
        histogram:
            Destination for each completed job's response time
            ``last_unit_round - arrival_round + 1``; ``None`` discards.
        warmup:
            Jobs finishing in rounds ``< warmup`` are not recorded
            (unit accounting still includes them).
        response_sink:
            Optional callable ``(departure_rounds, times, counts,
            servers)`` receiving the same post-warmup records the
            histogram gets, stamped with the serving server of each
            record (the probe feed; see :mod:`repro.sim.probes`).
        """
        n = self._n
        job_servers = np.asarray(job_servers, dtype=np.int64)
        job_rounds = np.asarray(job_rounds, dtype=np.int64)
        job_sizes = np.asarray(job_sizes, dtype=np.int64)
        if not (job_servers.shape == job_rounds.shape == job_sizes.shape):
            raise ValueError("job arrays must be parallel 1-D arrays")
        if job_sizes.size and int(job_sizes.min()) < 1:
            raise ValueError("job sizes must be >= 1")
        if job_servers.size and np.any(np.diff(job_servers) < 0):
            raise ValueError("jobs must be sorted server-major")
        self._check_capacity_mask(job_servers)
        new_units = np.zeros(n, dtype=np.int64)
        if job_sizes.size:
            np.add.at(new_units, job_servers, job_sizes)
        server_units = self._units + new_units
        dep_totals = done_block.sum(axis=0)
        if np.any(dep_totals > server_units):
            raise RuntimeError(
                "sized batch store drained past its contents; "
                "engine accounting is corrupt"
            )
        if not server_units.any():
            return

        # Job sequence per server: carried jobs first (the head may be
        # partially served), then the block's admissions (server-major).
        new_lengths = np.bincount(job_servers, minlength=n)
        old_lengths = self._lengths
        total_lengths = old_lengths + new_lengths
        num_jobs = int(total_lengths.sum())
        rounds_merged = np.empty(num_jobs, dtype=np.int64)
        units_merged = np.empty(num_jobs, dtype=np.int64)
        dest_base = np.cumsum(total_lengths) - total_lengths
        old_total = self._rounds.size
        if old_total:
            old_base = np.cumsum(old_lengths) - old_lengths
            old_dest = (
                np.repeat(dest_base, old_lengths)
                + np.arange(old_total)
                - np.repeat(old_base, old_lengths)
            )
            rounds_merged[old_dest] = self._rounds
            units_merged[old_dest] = self._remaining
        if job_sizes.size:
            new_base = np.cumsum(new_lengths) - new_lengths
            new_dest = (
                np.repeat(dest_base + old_lengths, new_lengths)
                + np.arange(job_sizes.size)
                - np.repeat(new_base, new_lengths)
            )
            rounds_merged[new_dest] = job_rounds
            units_merged[new_dest] = job_sizes
        job_server = np.repeat(np.arange(n), total_lengths)

        # Global unit-position axis: server s occupies the half-open
        # interval (server_base[s], server_base[s] + server_units[s]];
        # job j ends at the cumulative unit count through j.
        server_base = np.cumsum(server_units) - server_units
        job_ends = np.cumsum(units_merged)

        # Departure boundaries on the same axis, plus one sentinel per
        # server with units left over, so every job's last unit maps to
        # either a departure round or "still queued".
        done_by_server = done_block.T
        dep_srv, dep_col = np.nonzero(done_by_server)
        dep_counts = done_by_server[dep_srv, dep_col]
        dep_base = np.cumsum(dep_totals) - dep_totals
        dep_ends = (
            server_base[dep_srv] + np.cumsum(dep_counts) - dep_base[dep_srv]
        )
        leftover_units = server_units - dep_totals
        sentinel_srv = np.flatnonzero(leftover_units)
        sentinel_ends = server_base[sentinel_srv] + server_units[sentinel_srv]
        all_dep_ends = np.concatenate([dep_ends, sentinel_ends])
        all_dep_rounds = np.concatenate(
            [
                start_round + dep_col,
                np.zeros(sentinel_srv.size, dtype=np.int64),
            ]
        )
        still_queued = np.concatenate(
            [
                np.zeros(dep_ends.size, dtype=bool),
                np.ones(sentinel_srv.size, dtype=bool),
            ]
        )
        order = np.argsort(all_dep_ends, kind="stable")
        all_dep_ends = all_dep_ends[order]
        all_dep_rounds = all_dep_rounds[order]
        still_queued = still_queued[order]

        # A job finishes in the departure interval containing its last
        # unit: the first boundary >= its cumulative end position.
        interval = np.searchsorted(all_dep_ends, job_ends, side="left")
        completed = ~still_queued[interval]

        if histogram is not None or response_sink is not None:
            dep_round = all_dep_rounds[interval]
            record = completed & (dep_round >= warmup)
            times = dep_round[record] - rounds_merged[record] + 1
            counts = np.ones(int(record.sum()), dtype=np.int64)
            if histogram is not None:
                histogram.record_many(times, counts)
            if response_sink is not None:
                response_sink(
                    dep_round[record], times, counts, job_server[record]
                )

        # Carry: jobs whose last unit outlives the block's completions;
        # the head job of each leftover server may be partially served.
        carried = ~completed
        drained_end = server_base + dep_totals
        job_starts = job_ends - units_merged
        carried_srv = job_server[carried]
        self._rounds = rounds_merged[carried]
        self._remaining = job_ends[carried] - np.maximum(
            job_starts[carried], drained_end[carried_srv]
        )
        self._lengths = np.bincount(carried_srv, minlength=n)
        self._units = leftover_units

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SizedBatchQueueStore servers={self._n} "
            f"jobs={int(self._lengths.sum())} "
            f"units={int(self._units.sum())}>"
        )
