"""Per-dispatcher arrival processes (phase 1 of each round).

The paper's evaluation draws each dispatcher's round batch from a Poisson
distribution, ``a_d(t) ~ Pois(lambda_d)`` (Section 6.1); the model itself
only requires stochastic, independent, unknown processes (Section 2).  The
extra processes here support tests (deterministic, trace) and burstiness
experiments (a two-state modulated Poisson whose phase is *shared* by all
dispatchers -- correlated arrival surges are the hard case for herding).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "TraceArrivals",
    "ModulatedPoissonArrivals",
]


class ArrivalProcess(ABC):
    """Produces the vector of per-dispatcher batch sizes each round."""

    @property
    @abstractmethod
    def num_dispatchers(self) -> int:
        """Number of dispatchers this process feeds."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, round_index: int) -> np.ndarray:
        """Return an int64 array of length ``m`` with this round's arrivals."""

    def sample_many(
        self, rng: np.random.Generator, start_round: int, count: int
    ) -> np.ndarray:
        """Return a ``(count, m)`` block of batches for consecutive rounds.

        The fast engine backend pre-samples rounds in chunks.  The default
        loops :meth:`sample` (bit-identical RNG consumption for stateful
        processes); memoryless processes override with one block draw --
        numpy fills output arrays in C order, element by element, so the
        block consumes the stream exactly like ``count`` sequential calls.
        """
        return np.stack(
            [self.sample(rng, start_round + i) for i in range(count)]
        )

    def reset(self) -> None:
        """Clear internal state (modulation phase, trace position...)."""

    @property
    def mean_rate(self) -> float:
        """Expected total arrivals per round (for admissibility checks)."""
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Independent Poisson batches: ``a_d(t) ~ Pois(lambda_d)``."""

    def __init__(self, lambdas: np.ndarray) -> None:
        self.lambdas = np.asarray(lambdas, dtype=np.float64)
        if self.lambdas.ndim != 1 or self.lambdas.size == 0:
            raise ValueError("lambdas must be a non-empty 1-D array")
        if np.any(self.lambdas < 0):
            raise ValueError("arrival rates must be non-negative")

    @property
    def num_dispatchers(self) -> int:
        return int(self.lambdas.size)

    @property
    def mean_rate(self) -> float:
        return float(self.lambdas.sum())

    def sample(self, rng: np.random.Generator, round_index: int) -> np.ndarray:
        return rng.poisson(self.lambdas).astype(np.int64)

    def sample_many(
        self, rng: np.random.Generator, start_round: int, count: int
    ) -> np.ndarray:
        return rng.poisson(
            self.lambdas, size=(count, self.lambdas.size)
        ).astype(np.int64)


class DeterministicArrivals(ArrivalProcess):
    """Fixed fractional rates realized by credit accumulation.

    Dispatcher ``d`` with rate 2.5 receives 2, 3, 2, 3, ... jobs.  Useful
    for tests that need an exactly known workload.
    """

    def __init__(self, rates: np.ndarray) -> None:
        self.rates = np.asarray(rates, dtype=np.float64)
        if np.any(self.rates < 0):
            raise ValueError("arrival rates must be non-negative")
        self._credit = np.zeros_like(self.rates)

    @property
    def num_dispatchers(self) -> int:
        return int(self.rates.size)

    @property
    def mean_rate(self) -> float:
        return float(self.rates.sum())

    def reset(self) -> None:
        self._credit[:] = 0.0

    def sample(self, rng: np.random.Generator, round_index: int) -> np.ndarray:
        self._credit += self.rates
        batches = np.floor(self._credit + 1e-12).astype(np.int64)
        self._credit -= batches
        return batches


class TraceArrivals(ArrivalProcess):
    """Replay a ``(T, m)`` matrix of batch sizes, cycling past the end."""

    def __init__(self, trace: np.ndarray) -> None:
        self.trace = np.asarray(trace, dtype=np.int64)
        if self.trace.ndim != 2 or self.trace.shape[0] == 0:
            raise ValueError("trace must be a non-empty (rounds, dispatchers) matrix")
        if np.any(self.trace < 0):
            raise ValueError("trace entries must be non-negative")

    @property
    def num_dispatchers(self) -> int:
        return int(self.trace.shape[1])

    @property
    def mean_rate(self) -> float:
        return float(self.trace.sum(axis=1).mean())

    def sample(self, rng: np.random.Generator, round_index: int) -> np.ndarray:
        return self.trace[round_index % self.trace.shape[0]]

    def sample_many(
        self, rng: np.random.Generator, start_round: int, count: int
    ) -> np.ndarray:
        rows = (start_round + np.arange(count)) % self.trace.shape[0]
        return self.trace[rows]


class ModulatedPoissonArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson arrivals (bursty extension).

    A global phase alternates between *calm* and *surge*; all dispatchers
    share the phase, so surges are correlated across entry points.  With
    ``switch_prob = 1`` the phase resamples every round; with small values
    bursts persist.  Mean rate is the stationary mixture (phases are
    symmetric, so the stationary distribution is 50/50).
    """

    def __init__(
        self,
        calm_lambdas: np.ndarray,
        surge_lambdas: np.ndarray,
        switch_prob: float = 0.05,
    ) -> None:
        self.calm = np.asarray(calm_lambdas, dtype=np.float64)
        self.surge = np.asarray(surge_lambdas, dtype=np.float64)
        if self.calm.shape != self.surge.shape or self.calm.ndim != 1:
            raise ValueError("calm and surge rate vectors must match")
        if not 0.0 < switch_prob <= 1.0:
            raise ValueError("switch_prob must be in (0, 1]")
        self.switch_prob = float(switch_prob)
        self._in_surge = False

    @property
    def num_dispatchers(self) -> int:
        return int(self.calm.size)

    @property
    def mean_rate(self) -> float:
        return float(0.5 * (self.calm.sum() + self.surge.sum()))

    def reset(self) -> None:
        self._in_surge = False

    def sample(self, rng: np.random.Generator, round_index: int) -> np.ndarray:
        if rng.random() < self.switch_prob:
            self._in_surge = not self._in_surge
        lambdas = self.surge if self._in_surge else self.calm
        return rng.poisson(lambdas).astype(np.int64)
