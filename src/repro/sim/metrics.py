"""Metrics: exact response-time distributions and queue-length series.

Response times in the round-based model are positive integers, so the full
distribution is an integer histogram.  Storing counts instead of samples
gives exact means, percentiles and CCDFs (the paper plots tails down to
1e-8 -- far beyond what a sample reservoir could resolve) at O(max response
time) memory.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ResponseTimeHistogram", "QueueLengthSeries"]


class ResponseTimeHistogram:
    """Exact histogram of integer response times.

    ``counts[t]`` is the number of jobs whose response time was exactly
    ``t`` rounds (index 0 is unused; response times start at 1).
    """

    def __init__(self, initial_capacity: int = 256) -> None:
        if initial_capacity < 2:
            raise ValueError("initial_capacity must be >= 2")
        self._counts = np.zeros(initial_capacity, dtype=np.int64)
        self._max_seen = 0

    # -- recording ---------------------------------------------------------

    def record(self, response_time: int, count: int = 1) -> None:
        """Add ``count`` jobs with the given integer response time."""
        if response_time < 1:
            raise ValueError(f"response time must be >= 1, got {response_time}")
        if count <= 0:
            return
        if response_time >= self._counts.size:
            new_size = max(self._counts.size * 2, response_time + 1)
            grown = np.zeros(new_size, dtype=np.int64)
            grown[: self._counts.size] = self._counts
            self._counts = grown
        self._counts[response_time] += count
        if response_time > self._max_seen:
            self._max_seen = response_time

    def record_many(self, response_times: np.ndarray, counts: np.ndarray) -> None:
        """Bulk-add jobs: ``counts[i]`` jobs took ``response_times[i]`` rounds.

        The vectorized engine backend drains whole server sets at once and
        records their response times in one call; duplicate times are
        accumulated (``np.add.at`` semantics), zero counts are ignored, and
        the result is identical to the equivalent sequence of
        :meth:`record` calls.
        """
        times = np.asarray(response_times, dtype=np.int64)
        amounts = np.asarray(counts, dtype=np.int64)
        if times.shape != amounts.shape:
            raise ValueError("response_times and counts must have the same shape")
        keep = amounts > 0
        if not keep.all():
            times = times[keep]
            amounts = amounts[keep]
        if times.size == 0:
            return
        hi = int(times.max())
        if int(times.min()) < 1:
            raise ValueError("response times must be >= 1")
        if hi >= self._counts.size:
            grown = np.zeros(max(self._counts.size * 2, hi + 1), dtype=np.int64)
            grown[: self._counts.size] = self._counts
            self._counts = grown
        np.add.at(self._counts, times, amounts)
        if hi > self._max_seen:
            self._max_seen = hi

    def state_dict(self) -> dict:
        """Sparse JSON-able form: nonzero ``values`` and their ``counts``.

        The one wire format for response-time histograms -- result
        persistence and the ``responses`` probe both delegate here, so
        the encoding cannot drift between them.
        """
        counts = self.counts
        nonzero = np.flatnonzero(counts)
        return {
            "values": nonzero.tolist(),
            "counts": counts[nonzero].tolist(),
        }

    def load_state(self, state: dict) -> None:
        """Fold in counts written by :meth:`state_dict`."""
        self.record_many(
            np.asarray(state.get("values", ()), dtype=np.int64),
            np.asarray(state.get("counts", ()), dtype=np.int64),
        )

    def merge(self, other: "ResponseTimeHistogram") -> None:
        """Fold another histogram's counts into this one."""
        hi = other._max_seen
        if hi == 0:
            return
        if hi >= self._counts.size:
            grown = np.zeros(hi + 1, dtype=np.int64)
            grown[: self._counts.size] = self._counts
            self._counts = grown
        self._counts[: hi + 1] += other._counts[: hi + 1]
        self._max_seen = max(self._max_seen, hi)

    # -- queries -----------------------------------------------------------

    @property
    def total(self) -> int:
        """Number of recorded jobs."""
        return int(self._counts.sum())

    @property
    def max_response_time(self) -> int:
        """Largest recorded response time (0 if empty)."""
        return self._max_seen

    @property
    def counts(self) -> np.ndarray:
        """Read-only view of the counts up to the max recorded value."""
        view = self._counts[: self._max_seen + 1]
        view.flags.writeable = False
        return view

    def mean(self) -> float:
        """Average response time (NaN if empty)."""
        total = self.total
        if total == 0:
            return float("nan")
        values = np.arange(self._max_seen + 1, dtype=np.float64)
        return float(np.dot(values, self._counts[: self._max_seen + 1]) / total)

    def percentile(self, q: float) -> int:
        """Smallest response time ``t`` with ``P(T <= t) >= q`` (q in (0, 1])."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        total = self.total
        if total == 0:
            raise ValueError("empty histogram has no percentiles")
        cumulative = np.cumsum(self._counts[: self._max_seen + 1])
        return int(np.searchsorted(cumulative, q * total, side="left"))

    def ccdf(self, taus: np.ndarray | list[int]) -> np.ndarray:
        """``P(T > tau)`` for each tau (the paper's Figures 3b/4b y-axis)."""
        total = self.total
        if total == 0:
            raise ValueError("empty histogram has no CCDF")
        taus = np.asarray(taus, dtype=np.int64)
        cumulative = np.cumsum(self._counts[: self._max_seen + 1])
        clipped = np.clip(taus, 0, self._max_seen)
        at_or_below = np.where(taus >= 0, cumulative[clipped], 0)
        at_or_below = np.where(taus > self._max_seen, total, at_or_below)
        return (total - at_or_below) / total

    def quantile_of_ccdf(self, level: float) -> int:
        """Smallest tau with ``P(T > tau) <= level`` (e.g. level=1e-4)."""
        if not 0.0 < level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {level}")
        return self.percentile(1.0 - level)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResponseTimeHistogram total={self.total} "
            f"mean={self.mean():.3f} max={self._max_seen}>"
        )


class QueueLengthSeries:
    """Per-round total queue length, for stability diagnostics.

    Records ``sum_s q_s(t)`` each round; exposes summary statistics and a
    growth-slope estimate (positive slope at admissible load signals an
    unstable policy, cf. the paper's footnote 1).
    """

    def __init__(self, rounds_hint: int = 1024) -> None:
        self._values = np.zeros(max(16, rounds_hint), dtype=np.int64)
        self._count = 0

    def record(self, total_queue_length: int) -> None:
        """Append one round's total queue length."""
        if self._count == self._values.size:
            grown = np.zeros(self._values.size * 2, dtype=np.int64)
            grown[: self._count] = self._values
            self._values = grown
        self._values[self._count] = total_queue_length
        self._count += 1

    def record_many(self, totals: np.ndarray) -> None:
        """Append one total per round, in round order (bulk ``record``)."""
        totals = np.asarray(totals, dtype=np.int64)
        if totals.ndim != 1:
            raise ValueError("totals must be a 1-D array of per-round values")
        needed = self._count + totals.size
        if needed > self._values.size:
            grown = np.zeros(max(self._values.size * 2, needed), dtype=np.int64)
            grown[: self._count] = self._values[: self._count]
            self._values = grown
        self._values[self._count : needed] = totals
        self._count = needed

    def merge(self, other: "QueueLengthSeries") -> None:
        """Fold in a parallel series by element-wise addition.

        The shard-merge operation: two series recorded over the *same
        rounds* (e.g. by server shards of one simulation) combine into
        the pool-wide series by adding per-round totals.  Series of
        different lengths cover different rounds and cannot be aligned,
        so a length mismatch raises.
        """
        if other._count != self._count:
            raise ValueError(
                f"cannot merge a {other._count}-round series into a "
                f"{self._count}-round series; shard series must cover the "
                f"same rounds"
            )
        self._values[: self._count] += other._values[: other._count]

    @property
    def values(self) -> np.ndarray:
        """The recorded series as a read-only array."""
        view = self._values[: self._count]
        view.flags.writeable = False
        return view

    def mean(self) -> float:
        """Time-averaged total queue length."""
        if self._count == 0:
            return float("nan")
        return float(self.values.mean())

    def growth_slope(self) -> float:
        """Least-squares slope of total queue length per round.

        Near zero for a stable policy at admissible load; solidly positive
        when some queue grows without bound.
        """
        if self._count < 2:
            return 0.0
        y = self.values.astype(np.float64)
        x = np.arange(self._count, dtype=np.float64)
        return float(np.polyfit(x, y, 1)[0])

    def tail_to_head_ratio(self, fraction: float = 0.25) -> float:
        """Mean of the last ``fraction`` of rounds over the first.

        A scale-free instability signal: ~1 for stationary series, large
        for growing ones.  Series shorter than 8 rounds have no
        meaningful head/tail split and yield NaN (they used to silently
        report 1.0, masquerading as a confident "stationary" verdict).
        """
        if not 0.0 < fraction <= 0.5:
            raise ValueError("fraction must be in (0, 0.5]")
        if self._count < 8:
            return float("nan")
        k = max(1, int(self._count * fraction))
        head = float(self.values[:k].mean())
        tail = float(self.values[-k:].mean())
        return tail / max(head, 1.0)
