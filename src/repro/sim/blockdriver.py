"""The shared 256-round block driver behind every engine kernel.

All block-structured kernels -- ``fast``, ``sharded`` and ``compiled``,
in both the unsized and the sized engine -- execute the *same* round
loop: pre-sample a block of workload randomness, run each round's
dispatch against the live queue totals, defer FIFO departure resolution
to block end, feed the block to the probe set, and hand the lifecycle
controller an exportable state at the block boundary.  What differs
between kernels is only **where a finished block goes** (a local batch
store, per-shard workers over pipes) and **which store implementation
resolves it** -- so this module owns the loop once and parameterizes
the destination:

``consume``
    A callable receiving the finished :class:`UnsizedBlock` /
    :class:`SizedBlock`.  The fast kernels resolve it against a local
    :class:`~repro.sim.batchstore.BatchQueueStore`; the sharded kernels
    slice it across shard workers.

``export_state``
    A zero-argument callable building the kernel's checkpoint dict;
    the driver invokes the :class:`~repro.sim.lifecycle.RunController`
    seam with it at every block boundary, exactly as the kernels used
    to inline.

The driver also owns the two cross-round accelerations the kernels
share:

* **Cross-round dispatch batching.**  When the policy passes
  :func:`repro.policies.base.supports_round_batching` (queue-oblivious,
  no round hooks), the whole block's admissions come from one
  :meth:`~repro.policies.base.Policy.dispatch_rounds` call and the loop
  degenerates to the pure queue/departure recurrence -- bit-identical
  by that method's contract, with none of the per-round Python
  overhead.
* **A compiled round-kernel seam.**  The unsized driver accepts an
  optional ``round_kernel`` object (see :mod:`repro.sim.compiled`)
  that runs the *entire* block -- dispatch state, queue recurrence and
  completion matrix -- in one native call; the driver reconstructs the
  queue trajectory and series totals from the admission/completion
  matrices afterwards (integer prefix sums, so the values are the ones
  the per-round loop would have recorded).

Bit-identity is the invariant throughout: for a given policy and seed,
every path through this driver produces the same admission matrix,
completion matrix, queue trajectory and checkpoint state as the
original per-round loop it replaced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.policies.base import (
    Policy,
    has_native_dispatch_round,
    supports_round_batching,
)

from .lifecycle import RunController
from .probes import ProbeBlock, ProbeSet

__all__ = [
    "BLOCK_ROUNDS",
    "UnsizedBlock",
    "SizedBlock",
    "UnsizedRunState",
    "SizedRunState",
    "RoundKernel",
    "drive_unsized",
    "drive_sized",
]

#: Rounds pre-sampled per block (bounds the memory of the ``(chunk, m)``
#: / ``(chunk, n)`` workload blocks and sets the checkpoint granularity).
BLOCK_ROUNDS = 256

_EMPTY_JOBS = np.empty(0, dtype=np.int64)


@dataclass
class UnsizedBlock:
    """One finished block of the unsized round loop, ready to resolve."""

    start_round: int
    length: int
    batch: np.ndarray  # (length, m) per-dispatcher arrivals
    received: np.ndarray  # (length, n) per-server admissions
    done: np.ndarray  # (length, n) per-server completions
    queues: np.ndarray | None  # (length, n) post-round queues, if requested


@dataclass
class SizedBlock:
    """One finished block of the sized round loop, jobs sorted server-major."""

    start_round: int
    length: int
    batch: np.ndarray  # (length, m) per-dispatcher arrivals
    received: np.ndarray | None  # (length, n) admitted units, if requested
    done: np.ndarray  # (length, n) drained units
    queues: np.ndarray | None  # (length, n) post-round unit queues
    job_servers: np.ndarray  # per-job server, sorted (stable) server-major
    job_rounds: np.ndarray  # per-job admission round, same order
    job_sizes: np.ndarray  # per-job unit size, same order


class UnsizedRunState:
    """The unsized kernels' mutable run accumulators (checkpointed keys).

    ``queues`` is the live array the checkpoint dicts reference -- the
    driver mutates it in place and never rebinds it.
    """

    __slots__ = ("queues", "total_arrived", "server_received", "server_departed")

    def __init__(
        self,
        queues: np.ndarray,
        total_arrived: int,
        server_received: np.ndarray,
        server_departed: np.ndarray,
    ) -> None:
        self.queues = queues
        self.total_arrived = total_arrived
        self.server_received = server_received
        self.server_departed = server_departed


class SizedRunState:
    """The sized kernels' mutable run accumulators (checkpointed keys)."""

    __slots__ = ("unit_queues", "total_jobs", "units_in", "units_out")

    def __init__(
        self,
        unit_queues: np.ndarray,
        total_jobs: int,
        units_in: int,
        units_out: int,
    ) -> None:
        self.unit_queues = unit_queues
        self.total_jobs = total_jobs
        self.units_in = units_in
        self.units_out = units_out


class RoundKernel(Protocol):
    """A native whole-block round loop (the compiled kernel's seam).

    ``run_block`` owns dispatch state, the queue recurrence and the
    completion matrix for one block: it fills ``received`` and ``done``
    and advances ``queues`` in place, leaving the policy's carried state
    exactly as the per-round loop would.  The driver reconstructs the
    queue trajectory and accumulators from the matrices afterwards.
    """

    def run_block(
        self,
        batch: np.ndarray,  # (length, m) arrivals, read-only
        capacity: np.ndarray,  # (length, n) capacities, read-only
        queues: np.ndarray,  # (n,) live queue totals, advanced in place
        received: np.ndarray,  # (length, n) zeros on entry, filled
        done: np.ndarray,  # (length, n) zeros on entry, filled
    ) -> None: ...


def _check_received_block(
    policy: Policy, received: np.ndarray, batch: np.ndarray, n: int
) -> None:
    """Vectorized analogue of the per-round shape / conservation checks."""
    if received.shape != (batch.shape[0], n):
        raise ValueError(
            f"{policy.name}.dispatch_rounds returned shape {received.shape}, "
            f"expected ({batch.shape[0]}, {n})"
        )
    round_totals = batch.sum(axis=1)
    got = received.sum(axis=1)
    if not np.array_equal(got, round_totals):
        bad = int(np.flatnonzero(got != round_totals)[0])
        raise ValueError(
            f"{policy.name} assigned {int(got[bad])} jobs for a round "
            f"of {int(round_totals[bad])}"
        )


def drive_unsized(
    *,
    policy: Policy,
    arrivals,
    service,
    arrival_rng: np.random.Generator,
    departure_rng: np.random.Generator,
    rounds: int,
    warmup: int,  # noqa: ARG001 - kept for signature symmetry with consumers
    start_round: int,
    state: UnsizedRunState,
    block_probes: ProbeSet,
    series,
    consume: Callable[[UnsizedBlock], None],
    controller: RunController | None = None,
    export_state: Callable[[], dict] | None = None,
    round_kernel: RoundKernel | None = None,
) -> None:
    """Run the unsized round loop from ``start_round`` to ``rounds``.

    ``block_probes`` is the probe set fed whole blocks (the fast
    kernel's full set; the sharded coordinator's non-partitionable
    subset); ``series`` is the queue-length series recorded per round,
    or ``None`` when the consumer's side owns it (shard workers record
    their own slices).
    """
    queues = state.queues
    n = queues.size
    m = arrivals.num_dispatchers
    native = has_native_dispatch_round(policy)
    batching = supports_round_batching(policy)
    fields = block_probes.fields
    need_queues = "queues" in fields
    wants_blocks = block_probes.wants_blocks
    track = need_queues or series is not None

    for chunk_start in range(start_round, rounds, BLOCK_ROUNDS):
        chunk = min(BLOCK_ROUNDS, rounds - chunk_start)
        arrival_block = arrivals.sample_many(arrival_rng, chunk_start, chunk)
        capacity_block = service.sample_many(departure_rng, chunk_start, chunk)
        received_block = np.zeros((chunk, n), dtype=np.int64)
        done_block = np.zeros((chunk, n), dtype=np.int64)
        queue_block = np.zeros((chunk, n), dtype=np.int64) if need_queues else None

        if round_kernel is not None:
            start_total = int(queues.sum()) if track else 0
            start_queues = queues.copy() if need_queues else None
            round_kernel.run_block(
                arrival_block, capacity_block, queues, received_block, done_block
            )
            state.total_arrived += int(arrival_block.sum())
            state.server_received += received_block.sum(axis=0)
            if queue_block is not None:
                np.cumsum(received_block - done_block, axis=0, out=queue_block)
                queue_block += start_queues
            if series is not None:
                totals = (received_block - done_block).sum(axis=1)
                np.cumsum(totals, out=totals)
                totals += start_total
                series.record_many(totals)
        else:
            batched = None
            if batching:
                batched = policy.dispatch_rounds(arrival_block)
            if batched is not None:
                _check_received_block(policy, batched, arrival_block, n)
                received_block[:] = batched
                # The policy is out of the loop; only the queue /
                # departure recurrence remains, round by round.
                for i in range(chunk):
                    queues += received_block[i]
                    done = np.minimum(queues, capacity_block[i])
                    done_block[i] = done
                    queues -= done
                    if series is not None:
                        series.record(int(queues.sum()))
                    if queue_block is not None:
                        queue_block[i] = queues
                state.total_arrived += int(arrival_block.sum())
                state.server_received += received_block.sum(axis=0)
            else:
                for i in range(chunk):
                    t = chunk_start + i

                    # Phase 1: arrivals (pre-sampled).
                    batch = arrival_block[i]
                    round_total = int(batch.sum())
                    state.total_arrived += round_total

                    # Phase 2: one batched dispatch for the whole round.
                    policy.begin_round(t, queues)
                    if round_total:
                        policy.observe_total_arrivals(round_total)
                        if native:
                            rows = policy.dispatch_round(batch, queues)
                            if rows.shape != (m, n):
                                raise ValueError(
                                    f"{policy.name}.dispatch_round returned shape "
                                    f"{rows.shape}, expected ({m}, {n})"
                                )
                            received = rows.sum(axis=0)
                        else:
                            received = np.zeros(n, dtype=np.int64)
                            for d in range(m):
                                k = int(batch[d])
                                if k == 0:
                                    continue
                                received += policy.dispatch(d, k)
                        if int(received.sum()) != round_total:
                            raise ValueError(
                                f"{policy.name} assigned {int(received.sum())} "
                                f"jobs for a round of {round_total}"
                            )
                        received_block[i] = received
                        queues += received
                        state.server_received += received

                    # Phase 3: departures -- totals now, FIFO resolution
                    # at block end.
                    done = np.minimum(queues, capacity_block[i])
                    done_block[i] = done
                    queues -= done

                    policy.end_round(t, queues)
                    if series is not None:
                        series.record(int(queues.sum()))
                    if queue_block is not None:
                        queue_block[i] = queues

        state.server_departed += done_block.sum(axis=0)
        consume(
            UnsizedBlock(
                start_round=chunk_start,
                length=chunk,
                batch=arrival_block,
                received=received_block,
                done=done_block,
                queues=queue_block,
            )
        )
        if wants_blocks:
            block_probes.observe_block(
                ProbeBlock(
                    start_round=chunk_start,
                    length=chunk,
                    batch=arrival_block if "batch" in fields else None,
                    received=received_block if "received" in fields else None,
                    done=done_block if "done" in fields else None,
                    queues=queue_block,
                )
            )
        if controller is not None:
            assert export_state is not None
            controller.after_block(chunk_start + chunk, export_state)


def drive_sized(
    *,
    policy: Policy,
    arrivals,
    service,
    sizes,
    arrival_rng: np.random.Generator,
    departure_rng: np.random.Generator,
    rounds: int,
    start_round: int,
    state: SizedRunState,
    block_probes: ProbeSet,
    series,
    collect_received: bool,
    consume: Callable[[SizedBlock], None],
    controller: RunController | None = None,
    export_state: Callable[[], dict] | None = None,
) -> None:
    """Run the sized round loop from ``start_round`` to ``rounds``.

    Sizes are workload randomness interleaved with batches on the
    arrival stream, so the pre-sampling loop repeats the reference's
    per-round call sequence exactly.  ``collect_received`` forces the
    admitted-units matrix even when no probe reads it (the sharded
    consumer feeds shard slices from it).

    No cross-round batching here: the sized loop needs every round's
    per-``(dispatcher, server)`` cell counts to lay job sizes out, and
    ``dispatch_rounds`` only returns dispatcher-summed rows.
    """
    unit_queues = state.unit_queues
    n = unit_queues.size
    m = arrivals.num_dispatchers
    fields = block_probes.fields
    need_queues = "queues" in fields
    need_received = collect_received or "received" in fields
    wants_blocks = block_probes.wants_blocks
    # Flat (dispatcher-major) cell index -> server, matching both the
    # C-order ravel of a dispatch_round matrix and the order in which
    # the reference assigns a dispatcher's sizes to servers.
    cell_server = np.tile(np.arange(n), m)

    for chunk_start in range(start_round, rounds, BLOCK_ROUNDS):
        chunk = min(BLOCK_ROUNDS, rounds - chunk_start)

        # Phase 1 (pre-sampled): arrivals and sizes, interleaved per
        # round exactly as the reference consumes them.
        batch_block = np.empty((chunk, m), dtype=np.int64)
        size_rows: list[np.ndarray] = []
        for i in range(chunk):
            batch = arrivals.sample(arrival_rng, chunk_start + i)
            batch_block[i] = batch
            k = int(batch.sum())
            size_rows.append(sizes.sample(arrival_rng, k) if k else _EMPTY_JOBS)
        capacity_block = service.sample_many(departure_rng, chunk_start, chunk)
        done_block = np.zeros((chunk, n), dtype=np.int64)
        received_block = (
            np.zeros((chunk, n), dtype=np.int64) if need_received else None
        )
        queue_block = np.zeros((chunk, n), dtype=np.int64) if need_queues else None
        job_servers: list[np.ndarray] = []
        job_rounds: list[np.ndarray] = []
        job_sizes: list[np.ndarray] = []

        for i in range(chunk):
            t = chunk_start + i
            batch = batch_block[i]
            round_total = int(batch.sum())
            state.total_jobs += round_total

            # Phase 2: one batched dispatch for the whole round.
            policy.begin_round(t, unit_queues)
            if round_total:
                policy.observe_total_arrivals(round_total)
                rows = policy.dispatch_round(batch, unit_queues)
                if rows.shape != (m, n):
                    raise ValueError(
                        f"{policy.name}.dispatch_round returned shape "
                        f"{rows.shape}, expected ({m}, {n})"
                    )
                flat = rows.ravel()
                if int(flat.sum()) != round_total:
                    raise ValueError(
                        f"{policy.name} assigned {int(flat.sum())} "
                        f"jobs for a round of {round_total}"
                    )
                # The round's sizes are consumed dispatcher-major, within
                # a dispatcher in server-index order -- the C-order of
                # `rows`.  A prefix-sum over the flat size vector yields
                # every cell's unit total.
                round_sizes = size_rows[i]
                bounds = np.concatenate(([0], np.cumsum(round_sizes)))
                cell_ends = np.cumsum(flat)
                cell_units = bounds[cell_ends] - bounds[cell_ends - flat]
                received_units = cell_units.reshape(m, n).sum(axis=0)
                unit_queues += received_units
                state.units_in += int(received_units.sum())
                if received_block is not None:
                    received_block[i] = received_units
                job_servers.append(np.repeat(cell_server, flat))
                job_rounds.append(np.full(round_total, t, dtype=np.int64))
                job_sizes.append(round_sizes)

            # Phase 3: departures -- unit totals now, per-job FIFO
            # resolution at block end (by the consumer).
            done = np.minimum(unit_queues, capacity_block[i])
            done_block[i] = done
            unit_queues -= done
            state.units_out += int(done.sum())

            policy.end_round(t, unit_queues)
            if series is not None:
                series.record(int(unit_queues.sum()))
            if queue_block is not None:
                queue_block[i] = unit_queues

        # Jobs are concatenated in (round, dispatcher) admission order; a
        # stable sort by server turns that into the server-major FIFO
        # order every consumer requires.
        if job_servers:
            srv = np.concatenate(job_servers)
            order = np.argsort(srv, kind="stable")
            srv = srv[order]
            rounds_sorted = np.concatenate(job_rounds)[order]
            sizes_sorted = np.concatenate(job_sizes)[order]
        else:
            srv = rounds_sorted = sizes_sorted = _EMPTY_JOBS
        consume(
            SizedBlock(
                start_round=chunk_start,
                length=chunk,
                batch=batch_block,
                received=received_block,
                done=done_block,
                queues=queue_block,
                job_servers=srv,
                job_rounds=rounds_sorted,
                job_sizes=sizes_sorted,
            )
        )
        if wants_blocks:
            block_probes.observe_block(
                ProbeBlock(
                    start_round=chunk_start,
                    length=chunk,
                    batch=batch_block if "batch" in fields else None,
                    received=(
                        received_block if "received" in fields else None
                    ),
                    done=done_block if "done" in fields else None,
                    queues=queue_block,
                )
            )
        if controller is not None:
            assert export_state is not None
            controller.after_block(chunk_start + chunk, export_state)
