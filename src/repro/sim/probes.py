"""Pluggable observability probes: declarative per-experiment metrics.

The engines used to hardwire exactly two collectors -- the response-time
histogram and the total-queue series -- into their results, so every new
question about a run (per-server utilization, herding, windowed trends)
meant engine surgery.  This module makes observability a first-class,
registry-backed axis instead:

* A :class:`Probe` accumulates one family of statistics.  Every round
  kernel -- unsized/sized x reference/fast -- feeds probes through the
  same *block-shaped* interface: a :class:`ProbeBlock` of per-round
  arrival counts, per-server admissions, completions and end-of-round
  queue snapshots, plus (for probes that ask) the recorded response
  times stamped with their departure rounds.  Probes are mergeable
  (:meth:`Probe.merge` across replications/time shards,
  :meth:`Probe.merge_partition` across the server shards of one
  simulation) and serializable (:meth:`Probe.state_dict` /
  :meth:`Probe.from_state`), which is what the sharded kernels
  (:mod:`repro.sim.sharding`) and JSON persistence need.
* A registry (:func:`register_probe` / :func:`make_probe`) mirrors the
  policy and backend registries, so experiments and the CLI select
  probes as plain strings; :class:`ProbeSpec` freezes a name plus
  constructor kwargs into a picklable, hashable cell coordinate.
* The two legacy collectors live on as the *default probe set*
  (``"responses"`` and ``"queue_series"``): every simulation carries
  them, results expose the same ``histogram`` / ``queue_series``
  objects, and default runs are bit-identical to the pre-probe engine.

Built-in probes beyond the defaults: ``server_stats`` (per-server queue
distribution, utilization, idle fraction), ``dispatcher_stats``
(per-dispatcher batch statistics), ``windowed_mean`` (response-time
means over round windows), ``windowed_stability`` (total-queue means
over round windows, the drift signal for nonstationary scenarios) and
``herding`` (per-round co-targeting spikes, the paper's
coordination-failure mechanism).

Custom probes subclass :class:`Probe`, override :meth:`Probe.on_round`
(simple, per-round) or :meth:`Probe.observe_block` (vectorized), and
register under a name; ``SimulationConfig(probes=[...])`` and
``Experiment(metrics=[...])`` then accept them like any built-in.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ._registry import BackendRegistry
from .metrics import QueueLengthSeries, ResponseTimeHistogram

__all__ = [
    "PROBE_FIELDS",
    "DEFAULT_PROBE_LABELS",
    "ProbeContext",
    "ProbeBlock",
    "Probe",
    "ProbeSpec",
    "ProbeSet",
    "BlockRecorder",
    "ResponseTee",
    "register_probe",
    "make_probe",
    "available_probes",
    "probe_descriptions",
    "probe_from_state",
    "build_probe_set",
    "ResponseTimeProbe",
    "QueueSeriesProbe",
    "ServerStatsProbe",
    "ServerResponseStatsProbe",
    "DispatcherStatsProbe",
    "WindowedMeanProbe",
    "WindowedStabilityProbe",
    "HerdingSignalProbe",
]

#: Block arrays a probe may request via :attr:`Probe.fields`.  Kernels
#: materialize only the union of the active probes' fields.
PROBE_FIELDS = frozenset({"batch", "received", "done", "queues"})

#: Labels of the probes every simulation carries (the legacy collectors
#: re-homed).  Their statistics surface through the result's dedicated
#: ``histogram`` / ``queue_series`` fields and the legacy metric keys,
#: never through namespaced ``<probe>.<key>`` metrics.
DEFAULT_PROBE_LABELS = ("responses", "queue_series")


@dataclass(frozen=True)
class ProbeContext:
    """Immutable run coordinates handed to every probe at bind time.

    ``sized`` flags the unit-denominated engine: there ``received``,
    ``done`` and ``queues`` count work units while ``batch`` still
    counts jobs, and ``rates`` are unit capacities -- so utilization
    and queue statistics keep their meaning unchanged.
    """

    num_servers: int
    num_dispatchers: int
    rates: np.ndarray
    rounds: int
    warmup: int = 0
    sized: bool = False


@dataclass(frozen=True)
class ProbeBlock:
    """One block of rounds, as parallel per-round arrays.

    Arrays not requested by any active probe are ``None``; the rest are
    only valid for the duration of the :meth:`Probe.observe_block` call
    (kernels reuse the buffers), so probes must reduce, not retain.
    """

    start_round: int
    length: int
    #: ``(length, num_dispatchers)`` jobs each dispatcher received.
    batch: np.ndarray | None = None
    #: ``(length, num_servers)`` jobs/units admitted per server.
    received: np.ndarray | None = None
    #: ``(length, num_servers)`` jobs/units completed per server.
    done: np.ndarray | None = None
    #: ``(length, num_servers)`` end-of-round queue lengths.
    queues: np.ndarray | None = None


class Probe(ABC):
    """One family of run statistics, fed block-wise by the round kernels.

    Life-cycle: constructed fresh per run (from a :class:`ProbeSpec`),
    :meth:`bind`-ed once with the :class:`ProbeContext`, then fed via
    :meth:`observe_block` (and :meth:`observe_responses` when
    :attr:`wants_responses`); afterwards :meth:`summary` reports flat
    floats, and :meth:`state_dict` / :meth:`from_state` / :meth:`merge`
    move state across processes, files and shards.

    Subclasses declare :attr:`fields` -- the block arrays they read --
    so kernels skip materializing everything else.  The default is all
    fields, which keeps naive custom probes correct; built-ins narrow
    it.  Override :meth:`on_round` for a simple per-round probe or
    :meth:`observe_block` for a vectorized one.
    """

    #: Registry name (set by :func:`register_probe`).
    name: str = "abstract"
    #: One-line description shown by ``repro probes``.
    description: str = ""
    #: Which :class:`ProbeBlock` arrays this probe reads.  An
    #: empty-fields probe that overrides a block hook still receives
    #: blocks (with all arrays ``None``) -- only round indices/lengths.
    fields: frozenset[str] = PROBE_FIELDS
    #: True to receive recorded response times via ``observe_responses``.
    wants_responses: bool = False
    #: True when this probe's state may be accumulated *per server
    #: shard* -- each copy seeing only its own servers' columns of the
    #: block arrays (and only its servers' response events) -- and
    #: folded back into the global statistics with
    #: :meth:`merge_partition`.  The sharded kernels
    #: (:mod:`repro.sim.sharding`) replicate partitionable probes into
    #: every shard; non-partitionable probes are instead fed the full
    #: global block stream by the shard coordinator, which keeps naive
    #: custom probes (the ``False`` default) correct under sharding.
    partitionable: bool = False

    def __init__(self) -> None:
        self.ctx: ProbeContext | None = None

    def bind(self, ctx: ProbeContext) -> None:
        """Attach run coordinates; subclasses allocate state here."""
        if self.ctx is not None:
            raise RuntimeError(
                f"probe {self.name!r} is already bound; probes are "
                f"single-run objects -- build a fresh one per simulation"
            )
        self.ctx = ctx

    # -- feeding -----------------------------------------------------------

    def observe_block(self, block: ProbeBlock) -> None:
        """Fold in one block of rounds (default: loop :meth:`on_round`)."""
        for i in range(block.length):
            self.on_round(
                block.start_round + i,
                None if block.batch is None else block.batch[i],
                None if block.received is None else block.received[i],
                None if block.done is None else block.done[i],
                None if block.queues is None else block.queues[i],
            )

    def on_round(
        self,
        round_index: int,
        batch: np.ndarray | None,
        received: np.ndarray | None,
        done: np.ndarray | None,
        queues: np.ndarray | None,
    ) -> None:
        """Per-round hook for simple probes (rows of the block arrays)."""

    def observe_responses(
        self,
        rounds: np.ndarray,
        times: np.ndarray,
        counts: np.ndarray,
        servers: np.ndarray,
    ) -> None:
        """Recorded response times: ``counts[i]`` jobs took ``times[i]``
        rounds, departed in round ``rounds[i]`` and were served by
        server ``servers[i]`` (post-warmup only).  Under the sharded
        kernels a partitionable probe sees shard-local server indices
        (its slice's columns), matching the block arrays it receives."""

    # -- reporting / state -------------------------------------------------

    @abstractmethod
    def summary(self) -> dict[str, float]:
        """Flat headline statistics (floats; NaN where undefined)."""

    @abstractmethod
    def merge(self, other: "Probe") -> None:
        """Fold another probe's accumulated state into this one.

        Merge semantics are element-wise/additive and probe-specific:
        pooled-count probes (``responses``, ``windowed_mean``,
        ``server_stats``, ...) combine replications or time shards,
        while per-round series (``queue_series``) combine only
        *server shards of one simulation* -- each probe's ``merge``
        docstring states which, and incompatible shapes raise.
        """

    def merge_partition(self, other: "Probe") -> None:
        """Fold in a *server shard* of the same simulation.

        The shard-fold operation of the sharded kernels: ``other``
        observed a disjoint, contiguous slice of the server pool over
        the *same rounds* as ``self``.  It differs from :meth:`merge`
        only for probes whose state carries a per-server axis -- there
        the shards' arrays concatenate (in shard = server order, so
        fold shards left to right) instead of adding.  The default
        falls back to :meth:`merge`, which is correct whenever merging
        pools disjoint event multisets (``responses``,
        ``windowed_mean``) or adds parallel per-round series
        (``queue_series``).
        """
        self.merge(other)

    def probe_kwargs(self) -> dict:
        """Constructor kwargs needed to rebuild this probe (JSON-able)."""
        return {}

    @abstractmethod
    def get_state(self) -> dict:
        """Accumulated state as a JSON-able dict."""

    @abstractmethod
    def set_state(self, state: dict) -> None:
        """Restore accumulated state written by :meth:`get_state`."""

    def state_dict(self) -> dict:
        """Self-contained JSON-able snapshot (name + kwargs + state)."""
        return {
            "name": self.name,
            "kwargs": self.probe_kwargs(),
            "state": self.get_state(),
        }

    @classmethod
    def from_state(cls, payload: dict) -> "Probe":
        """Rebuild a probe from :meth:`state_dict` output (unbound;
        ready for :meth:`summary` and :meth:`merge`)."""
        probe = cls(**(payload.get("kwargs") or {}))
        probe.set_state(payload.get("state") or {})
        return probe

    def _check_merge(self, other: "Probe") -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


# ---------------------------------------------------------------------------
# Registry (the shared BackendRegistry machinery, like the engine
# backends -- same case handling, duplicate detection and error shapes).
# ---------------------------------------------------------------------------

_REGISTRY: BackendRegistry[Probe] = BackendRegistry("probe", "probes", Probe)


def register_probe(name: str) -> Callable[[type], type]:
    """Class decorator registering a :class:`Probe` under ``name``."""
    inner = _REGISTRY.register(name)

    def decorator(cls: type) -> type:
        if not (isinstance(cls, type) and issubclass(cls, Probe)):
            raise TypeError(f"{cls!r} is not a Probe subclass")
        cls.name = name.lower()
        return inner(cls)

    return decorator


def make_probe(spec: "str | ProbeSpec | Probe", **kwargs) -> Probe:
    """Instantiate a probe from a registry name (or pass one through)."""
    if isinstance(spec, ProbeSpec):
        if kwargs:
            raise ValueError("cannot pass kwargs with a ProbeSpec")
        return spec.build()
    return _REGISTRY.make(spec, **kwargs)


#: Names accepted by :func:`make_probe`, sorted.
available_probes = _REGISTRY.available
#: Name -> one-line description, for CLI listings.
probe_descriptions = _REGISTRY.descriptions


def probe_from_state(payload: dict) -> Probe:
    """Rebuild any registered probe from its :meth:`Probe.state_dict`."""
    return _REGISTRY.factory(payload.get("name") or "").from_state(payload)


@dataclass(frozen=True)
class ProbeSpec:
    """A probe registry name plus frozen constructor kwargs.

    The declarative, picklable form probes take inside
    ``SimulationConfig`` and ``Experiment`` cells (mirroring
    ``PolicySpec``); each run builds fresh probe instances from it.
    """

    name: str
    kwargs: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise TypeError("probe name must be a non-empty registry name")
        # Registry lookups are case-insensitive; normalize here so the
        # duplicate-label and default-collector guards cannot be dodged
        # by case variants.
        object.__setattr__(self, "name", self.name.lower())
        if isinstance(self.kwargs, dict):
            object.__setattr__(self, "kwargs", tuple(sorted(self.kwargs.items())))

    @classmethod
    def of(cls, spec: "str | ProbeSpec | Probe", **kwargs) -> "ProbeSpec":
        """Coerce a string (optionally with kwargs) or probe into a spec.

        A :class:`Probe` instance reduces to its registry name plus
        constructor kwargs -- the spec describes *what to build fresh
        each run*, never the instance's accumulated state.
        """
        if isinstance(spec, ProbeSpec):
            if kwargs:
                raise ValueError("cannot add kwargs to an existing ProbeSpec")
            return spec
        if isinstance(spec, Probe):
            if kwargs:
                raise ValueError("cannot add kwargs to a probe instance")
            return cls(
                name=spec.name, kwargs=tuple(sorted(spec.probe_kwargs().items()))
            )
        if not isinstance(spec, str):
            raise TypeError(
                f"probe spec must be a registry name, ProbeSpec or Probe, "
                f"got {type(spec).__name__}"
            )
        return cls(name=spec, kwargs=tuple(sorted(kwargs.items())))

    @property
    def label(self) -> str:
        """Identity used in result dicts and metric-key prefixes."""
        if not self.kwargs:
            return self.name
        params = ",".join(f"{k}={v}" for k, v in self.kwargs)
        return f"{self.name}[{params}]"

    def build(self) -> Probe:
        """Instantiate a fresh (unbound) probe."""
        return make_probe(self.name, **dict(self.kwargs))


# ---------------------------------------------------------------------------
# The probe set: what a round kernel actually drives.
# ---------------------------------------------------------------------------


class ProbeSet:
    """All probes of one run, bound and indexed for the kernels.

    Exposes the union of the probes' needs (:attr:`fields`,
    :attr:`wants_responses`) so kernels materialize exactly the arrays
    someone is listening to, plus the default collectors' underlying
    objects (:attr:`histogram`, :attr:`queue_series`) for the engines'
    in-line recording fast path.
    """

    def __init__(
        self, probes: Sequence[tuple[str, Probe]], ctx: ProbeContext
    ) -> None:
        labels = [label for label, _ in probes]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate probe labels: {labels}")
        self._probes: tuple[tuple[str, Probe], ...] = tuple(probes)
        self.ctx = ctx
        for _, probe in self._probes:
            probe.bind(ctx)
        # A probe joins the block feed when it declares fields OR
        # overrides a block hook (an empty-fields probe may still want
        # round indices/lengths -- it then receives all-None arrays).
        self._block_probes = tuple(
            p
            for _, p in self._probes
            if p.fields
            or type(p).observe_block is not Probe.observe_block
            or type(p).on_round is not Probe.on_round
        )
        self._response_probes = tuple(
            p for _, p in self._probes if p.wants_responses
        )
        self.fields: frozenset[str] = frozenset().union(
            *(p.fields for p in self._block_probes)
        ) if self._block_probes else frozenset()
        unknown = self.fields - PROBE_FIELDS
        if unknown:
            raise ValueError(f"probes request unknown block fields: {sorted(unknown)}")
        self.wants_blocks = bool(self._block_probes)
        self.wants_responses = bool(self._response_probes)
        self.histogram: ResponseTimeHistogram | None = None
        self.queue_series: QueueLengthSeries | None = None
        for _, probe in self._probes:
            if isinstance(probe, ResponseTimeProbe) and self.histogram is None:
                self.histogram = probe.histogram
            if isinstance(probe, QueueSeriesProbe) and self.queue_series is None:
                self.queue_series = probe.series

    def observe_block(self, block: ProbeBlock) -> None:
        """Fan one block out to every block-observing probe."""
        for probe in self._block_probes:
            probe.observe_block(block)

    def observe_responses(
        self,
        rounds: np.ndarray,
        times: np.ndarray,
        counts: np.ndarray,
        servers: np.ndarray,
    ) -> None:
        """Fan recorded response times out to the interested probes."""
        if np.asarray(times).size == 0:
            return
        for probe in self._response_probes:
            probe.observe_responses(rounds, times, counts, servers)

    def as_dict(self) -> dict[str, Probe]:
        """Label -> probe mapping, in declaration order (for results)."""
        return dict(self._probes)


def build_probe_set(
    ctx: ProbeContext,
    specs: Sequence["str | ProbeSpec"] = (),
    track_queue_series: bool = True,
) -> ProbeSet:
    """The default probe set plus per-run extras, bound to ``ctx``.

    Every run carries the ``responses`` probe (the response-time
    histogram) and -- unless ``track_queue_series`` is off -- the
    ``queue_series`` probe, exactly the two collectors the engines
    always had; ``specs`` appends the declaratively requested extras.
    """
    pairs: list[tuple[str, Probe]] = [("responses", ResponseTimeProbe())]
    if track_queue_series:
        pairs.append(("queue_series", QueueSeriesProbe()))
    for spec in specs:
        spec = ProbeSpec.of(spec)
        pairs.append((spec.label, spec.build()))
    return ProbeSet(pairs, ctx)


class BlockRecorder:
    """Accumulates a reference loop's per-round rows into probe blocks.

    The reference kernels produce one row per round; this buffer stores
    only the fields the active probes request and flushes a
    :class:`ProbeBlock` every ``block_rounds`` rounds (matching the fast
    kernels' chunking, so block boundaries -- and thus any block-order
    floating-point accumulation -- are identical across backends).
    """

    def __init__(self, probe_set: ProbeSet, block_rounds: int = 256) -> None:
        if block_rounds < 1:
            raise ValueError("block_rounds must be >= 1")
        ctx = probe_set.ctx
        fields = probe_set.fields
        self._probes = probe_set
        self.active = probe_set.wants_blocks
        self._capacity = block_rounds
        self._start = 0
        self._count = 0
        n, m = ctx.num_servers, ctx.num_dispatchers
        make = lambda cols: np.zeros((block_rounds, cols), dtype=np.int64)
        self._batch = make(m) if "batch" in fields else None
        self._received = make(n) if "received" in fields else None
        self._done = make(n) if "done" in fields else None
        self._queues = make(n) if "queues" in fields else None
        #: The one row the reference loops must assemble specially (a
        #: per-round done vector does not otherwise exist there).
        self.needs_done = self._done is not None

    def record(
        self,
        round_index: int,
        batch: np.ndarray | None,
        received: np.ndarray | None,
        done: np.ndarray | None,
        queues: np.ndarray | None,
    ) -> None:
        """Append one round's rows (``None`` rows mean all-zero)."""
        if not self.active:
            return
        i = self._count
        if i == 0:
            self._start = round_index
        for buffer, row in (
            (self._batch, batch),
            (self._received, received),
            (self._done, done),
            (self._queues, queues),
        ):
            if buffer is None:
                continue
            if row is None:
                buffer[i] = 0
            else:
                buffer[i] = row
        self._count = i + 1
        if self._count == self._capacity:
            self.flush()

    def flush(self) -> None:
        """Emit the buffered rounds as one block (no-op when empty)."""
        length = self._count
        if not length:
            return
        view = lambda buffer: None if buffer is None else buffer[:length]
        self._probes.observe_block(
            ProbeBlock(
                start_round=self._start,
                length=length,
                batch=view(self._batch),
                received=view(self._received),
                done=view(self._done),
                queues=view(self._queues),
            )
        )
        self._count = 0


class ResponseTee:
    """Round-scoped response sink for the reference kernels.

    Drop-in for the histogram in ``ServerQueue.complete``: records into
    the real histogram *and* buffers ``(time, count)`` pairs, which
    :meth:`flush` stamps with the departure round and forwards to the
    probes.  The reference loops set :attr:`server` to the server being
    drained before each ``complete`` call, so every buffered record is
    attributed to its serving server (matching the batch stores' native
    server stamping).  Only instantiated when some probe wants response
    events, so the default path keeps its direct histogram writes.
    """

    def __init__(
        self, probe_set: ProbeSet, histogram: ResponseTimeHistogram
    ) -> None:
        self._probes = probe_set
        self._histogram = histogram
        #: Index of the server currently draining (set by the kernel).
        self.server = 0
        self._times: list[int] = []
        self._counts: list[int] = []
        self._servers: list[int] = []

    def record(self, response_time: int, count: int = 1) -> None:
        """Mirror ``ResponseTimeHistogram.record`` while buffering."""
        self._histogram.record(response_time, count)
        self._times.append(response_time)
        self._counts.append(count)
        self._servers.append(self.server)

    def flush(self, round_index: int) -> None:
        """Emit the buffered records as this round's departures."""
        if not self._times:
            return
        times = np.asarray(self._times, dtype=np.int64)
        counts = np.asarray(self._counts, dtype=np.int64)
        servers = np.asarray(self._servers, dtype=np.int64)
        self._probes.observe_responses(
            np.full(times.size, round_index, dtype=np.int64),
            times,
            counts,
            servers,
        )
        self._times.clear()
        self._counts.clear()
        self._servers.clear()


# ---------------------------------------------------------------------------
# Built-in probes.
# ---------------------------------------------------------------------------


@register_probe("responses")
class ResponseTimeProbe(Probe):
    """The exact response-time histogram (the paper's primary metric).

    Default probe.  The engines feed its :attr:`histogram` in-line
    during FIFO resolution (the zero-overhead fast path), so it needs
    no block fields; it exists as a probe so response-time state is
    mergeable, serializable and summary-addressable like everything
    else.
    """

    description = (
        "exact integer response-time histogram (mean/percentiles/max); "
        "always on"
    )
    fields = frozenset()
    #: Response records partition by the server that served the job, so
    #: the additive merge is also the correct shard fold.
    partitionable = True

    def __init__(self, histogram: ResponseTimeHistogram | None = None) -> None:
        super().__init__()
        self.histogram = histogram if histogram is not None else ResponseTimeHistogram()

    def summary(self) -> dict[str, float]:
        hist = self.histogram
        total = hist.total
        if total == 0:
            quantiles = {q: float("nan") for q in ("p50", "p95", "p99", "p999")}
            return {"total": 0.0, "mean": float("nan"), "max": 0.0, **quantiles}
        return {
            "total": float(total),
            "mean": hist.mean(),
            "p50": float(hist.percentile(0.50)),
            "p95": float(hist.percentile(0.95)),
            "p99": float(hist.percentile(0.99)),
            "p999": float(hist.percentile(0.999)),
            "max": float(hist.max_response_time),
        }

    def merge(self, other: "Probe") -> None:
        self._check_merge(other)
        self.histogram.merge(other.histogram)

    def get_state(self) -> dict:
        return self.histogram.state_dict()

    def set_state(self, state: dict) -> None:
        self.histogram.load_state(state)


@register_probe("queue_series")
class QueueSeriesProbe(Probe):
    """Per-round total queue length (stability diagnostics).

    Default probe (gated by ``track_queue_series``).  Like the
    ``responses`` probe, the engines feed its :attr:`series` in-line
    (one scalar total per round -- the zero-overhead fast path), so it
    requests no block fields and default runs never materialize queue
    snapshots just for this collector.
    """

    description = (
        "per-round total queue length series (stability diagnostics); "
        "on unless track_queue_series=False"
    )
    fields = frozenset()
    #: ``merge`` already is the element-wise server-shard addition.
    partitionable = True

    def __init__(self, series: QueueLengthSeries | None = None) -> None:
        super().__init__()
        self.series = series

    def bind(self, ctx: ProbeContext) -> None:
        super().bind(ctx)
        if self.series is None:
            self.series = QueueLengthSeries(rounds_hint=ctx.rounds)

    def summary(self) -> dict[str, float]:
        series = self.series if self.series is not None else QueueLengthSeries()
        return {
            "rounds": float(series.values.size),
            "mean": series.mean(),
            "growth_slope": series.growth_slope(),
            "tail_head": series.tail_to_head_ratio(),
        }

    def merge(self, other: "Probe") -> None:
        """Server-shard merge: add per-round totals of one simulation's
        shards (NOT a replication pool -- two independent runs' series
        describe different simulations and must not be summed)."""
        self._check_merge(other)
        if self.series is None or other.series is None:
            raise ValueError("cannot merge unbound queue_series probes")
        self.series.merge(other.series)

    def get_state(self) -> dict:
        values = self.series.values if self.series is not None else ()
        return {"values": np.asarray(values).tolist()}

    def set_state(self, state: dict) -> None:
        values = state.get("values", ())
        if self.series is None:
            self.series = QueueLengthSeries(rounds_hint=max(16, len(values)))
        self.series.record_many(np.asarray(values, dtype=np.int64))


@register_probe("server_stats")
class ServerStatsProbe(Probe):
    """Per-server queue-length distribution, utilization and idle time.

    The heterogeneous-system diagnostics the total-queue series cannot
    see: which servers carry the backlog, how often each sits idle, and
    what fraction of each server's offered capacity did useful work
    (the paper's Section 3.1 under-utilization failure mode).  Also
    pools an exact queue-length histogram over all (server, round)
    pairs.
    """

    description = (
        "per-server queue distribution, utilization and idle fraction "
        "(heterogeneity diagnostics)"
    )
    fields = frozenset({"received", "done", "queues"})
    #: All state is server-indexed (plus a pooled histogram), so shards
    #: accumulate their own slices and :meth:`merge_partition`
    #: concatenates them back into the global per-server arrays.
    partitionable = True

    #: Queue lengths at or above this land in the histogram's overflow
    #: bucket (the last entry).  Bounds memory and JSON size on
    #: overloaded runs -- exactly when this probe gets attached --
    #: while per-server means/max stay exact.
    QUEUE_HIST_CAP = 1 << 16

    def __init__(self) -> None:
        super().__init__()
        self._rates: np.ndarray | None = None
        self._rounds = 0
        self._received: np.ndarray | None = None
        self._done: np.ndarray | None = None
        self._queue_sum: np.ndarray | None = None
        self._max_queue: np.ndarray | None = None
        self._idle: np.ndarray | None = None
        self._queue_hist = np.zeros(1, dtype=np.int64)

    def bind(self, ctx: ProbeContext) -> None:
        super().bind(ctx)
        n = ctx.num_servers
        self._rates = np.asarray(ctx.rates, dtype=np.float64).copy()
        self._received = np.zeros(n, dtype=np.int64)
        self._done = np.zeros(n, dtype=np.int64)
        self._queue_sum = np.zeros(n, dtype=np.int64)
        self._max_queue = np.zeros(n, dtype=np.int64)
        self._idle = np.zeros(n, dtype=np.int64)

    def observe_block(self, block: ProbeBlock) -> None:
        queues = block.queues
        self._rounds += block.length
        self._received += block.received.sum(axis=0)
        self._done += block.done.sum(axis=0)
        self._queue_sum += queues.sum(axis=0)
        np.maximum(self._max_queue, queues.max(axis=0), out=self._max_queue)
        self._idle += (queues == 0).sum(axis=0)
        counts = np.bincount(np.minimum(queues.ravel(), self.QUEUE_HIST_CAP))
        if counts.size > self._queue_hist.size:
            grown = np.zeros(counts.size, dtype=np.int64)
            grown[: self._queue_hist.size] = self._queue_hist
            self._queue_hist = grown
        self._queue_hist[: counts.size] += counts

    # -- derived quantities ------------------------------------------------

    def utilization(self) -> np.ndarray:
        """Per-server completed work over offered capacity."""
        return self._done / (self._rates * max(self._rounds, 1))

    def idle_fraction(self) -> np.ndarray:
        """Per-server fraction of rounds ending with an empty queue."""
        return self._idle / max(self._rounds, 1)

    def mean_queue_lengths(self) -> np.ndarray:
        """Per-server time-averaged queue length."""
        return self._queue_sum / max(self._rounds, 1)

    def queue_length_distribution(self) -> np.ndarray:
        """P(queue length = k) pooled over all (server, round) pairs.

        Lengths >= :attr:`QUEUE_HIST_CAP` pool in the final entry.
        """
        total = self._queue_hist.sum()
        if total == 0:
            return np.zeros(0, dtype=np.float64)
        return self._queue_hist / total

    def summary(self) -> dict[str, float]:
        if self._rounds == 0 or self._rates is None:
            return {
                "rounds": 0.0,
                "mean_queue": float("nan"),
                "max_queue": 0.0,
                "idle_fraction": float("nan"),
                "utilization_mean": float("nan"),
                "utilization_min": float("nan"),
                "utilization_max": float("nan"),
            }
        utilization = self.utilization()
        cells = self._rounds * self._rates.size
        return {
            "rounds": float(self._rounds),
            "mean_queue": float(self._queue_sum.sum() / cells),
            "max_queue": float(self._max_queue.max()),
            "idle_fraction": float(self._idle.sum() / cells),
            "utilization_mean": float(utilization.mean()),
            "utilization_min": float(utilization.min()),
            "utilization_max": float(utilization.max()),
        }

    def merge(self, other: "Probe") -> None:
        self._check_merge(other)
        if self._received is None or other._received is None:
            raise ValueError("cannot merge unbound server_stats probes")
        if self._received.size != other._received.size:
            raise ValueError(
                "server_stats merge needs matching server counts (merge is "
                "additive across replications/time, not server partitions)"
            )
        if not np.array_equal(self._rates, other._rates):
            raise ValueError(
                "server_stats merge needs identical server rates; runs on "
                "different systems cannot pool utilization"
            )
        self._rounds += other._rounds
        self._received += other._received
        self._done += other._done
        self._queue_sum += other._queue_sum
        np.maximum(self._max_queue, other._max_queue, out=self._max_queue)
        self._idle += other._idle
        self._merge_queue_hist(other)

    def merge_partition(self, other: "Probe") -> None:
        """Fold in the next *server shard*: the per-server arrays
        concatenate (shards fold left to right, so shard order is
        server order), the pooled (server, round) queue histogram adds,
        and the round count -- identical across shards -- is kept."""
        self._check_merge(other)
        if self._received is None or other._received is None:
            raise ValueError("cannot merge unbound server_stats probes")
        if self._rounds != other._rounds:
            raise ValueError(
                "server shards of one simulation must cover the same rounds; "
                f"got {self._rounds} vs {other._rounds}"
            )
        self._rates = np.concatenate([self._rates, other._rates])
        self._received = np.concatenate([self._received, other._received])
        self._done = np.concatenate([self._done, other._done])
        self._queue_sum = np.concatenate([self._queue_sum, other._queue_sum])
        self._max_queue = np.concatenate([self._max_queue, other._max_queue])
        self._idle = np.concatenate([self._idle, other._idle])
        self._merge_queue_hist(other)

    def _merge_queue_hist(self, other: "ServerStatsProbe") -> None:
        if other._queue_hist.size > self._queue_hist.size:
            grown = np.zeros(other._queue_hist.size, dtype=np.int64)
            grown[: self._queue_hist.size] = self._queue_hist
            self._queue_hist = grown
        self._queue_hist[: other._queue_hist.size] += other._queue_hist

    def get_state(self) -> dict:
        if self._received is None:
            return {"rounds": 0}
        return {
            "rounds": self._rounds,
            "rates": self._rates.tolist(),
            "received": self._received.tolist(),
            "done": self._done.tolist(),
            "queue_sum": self._queue_sum.tolist(),
            "max_queue": self._max_queue.tolist(),
            "idle": self._idle.tolist(),
            "queue_hist": self._queue_hist.tolist(),
        }

    def set_state(self, state: dict) -> None:
        if "rates" not in state:
            return
        self._rounds = int(state["rounds"])
        self._rates = np.asarray(state["rates"], dtype=np.float64)
        self._received = np.asarray(state["received"], dtype=np.int64)
        self._done = np.asarray(state["done"], dtype=np.int64)
        self._queue_sum = np.asarray(state["queue_sum"], dtype=np.int64)
        self._max_queue = np.asarray(state["max_queue"], dtype=np.int64)
        self._idle = np.asarray(state["idle"], dtype=np.int64)
        self._queue_hist = np.asarray(state["queue_hist"], dtype=np.int64)


@register_probe("server_response_stats")
class ServerResponseStatsProbe(Probe):
    """Per-server response-time breakdown: count, mean and max.

    The latency companion to ``server_stats``: queue lengths say where
    backlog *sits*; this probe says what jobs served by each server
    actually *paid* for it, exposing per-server latency asymmetry (slow
    servers with short queues versus fast servers with long ones) that
    the pooled histogram averages away.  Rides the server-attributed
    response feed, so it works identically on every kernel and
    partitions into shards (each shard sees exactly its own servers'
    departures).
    """

    description = (
        "per-server response-time count/mean/max (latency heterogeneity "
        "diagnostics)"
    )
    #: Response events only -- no block arrays needed.
    fields = frozenset()
    wants_responses = True
    #: All state is server-indexed and each server's departures happen
    #: in exactly one shard, so ``merge_partition`` concatenates the
    #: shards' arrays back into the global per-server vectors.
    partitionable = True

    def __init__(self) -> None:
        super().__init__()
        self._count: np.ndarray | None = None
        self._time_sum: np.ndarray | None = None
        self._time_max: np.ndarray | None = None

    def bind(self, ctx: ProbeContext) -> None:
        super().bind(ctx)
        n = ctx.num_servers
        self._count = np.zeros(n, dtype=np.int64)
        self._time_sum = np.zeros(n, dtype=np.int64)
        self._time_max = np.zeros(n, dtype=np.int64)

    def observe_responses(
        self,
        rounds: np.ndarray,
        times: np.ndarray,
        counts: np.ndarray,
        servers: np.ndarray,
    ) -> None:
        if times.size == 0:
            return
        np.add.at(self._count, servers, counts)
        np.add.at(self._time_sum, servers, times * counts)
        np.maximum.at(self._time_max, servers, times)

    # -- derived quantities ------------------------------------------------

    def response_counts(self) -> np.ndarray:
        """Per-server number of recorded (post-warmup) responses."""
        return self._count.copy()

    def mean_response_times(self) -> np.ndarray:
        """Per-server mean response time (NaN where nothing departed)."""
        with np.errstate(invalid="ignore"):
            return np.where(
                self._count > 0, self._time_sum / self._count, np.nan
            )

    def max_response_times(self) -> np.ndarray:
        """Per-server maximum recorded response time."""
        return self._time_max.copy()

    def summary(self) -> dict[str, float]:
        if self._count is None or self._count.sum() == 0:
            return {
                "responses": 0.0,
                "mean_response": float("nan"),
                "max_response": 0.0,
                "server_mean_min": float("nan"),
                "server_mean_max": float("nan"),
            }
        means = self.mean_response_times()
        served = means[self._count > 0]
        return {
            "responses": float(self._count.sum()),
            "mean_response": float(self._time_sum.sum() / self._count.sum()),
            "max_response": float(self._time_max.max()),
            "server_mean_min": float(served.min()),
            "server_mean_max": float(served.max()),
        }

    def merge(self, other: "Probe") -> None:
        """Pool replications / time shards of the same server set."""
        self._check_merge(other)
        if self._count is None or other._count is None:
            raise ValueError("cannot merge unbound server_response_stats probes")
        if self._count.size != other._count.size:
            raise ValueError(
                "server_response_stats merge needs matching server counts "
                "(merge is additive across replications/time, not server "
                "partitions)"
            )
        self._count += other._count
        self._time_sum += other._time_sum
        np.maximum(self._time_max, other._time_max, out=self._time_max)

    def merge_partition(self, other: "Probe") -> None:
        """Fold in the next *server shard*: arrays concatenate (shards
        fold left to right, so shard order is server order)."""
        self._check_merge(other)
        if self._count is None or other._count is None:
            raise ValueError("cannot merge unbound server_response_stats probes")
        self._count = np.concatenate([self._count, other._count])
        self._time_sum = np.concatenate([self._time_sum, other._time_sum])
        self._time_max = np.concatenate([self._time_max, other._time_max])

    def get_state(self) -> dict:
        if self._count is None:
            return {}
        return {
            "count": self._count.tolist(),
            "time_sum": self._time_sum.tolist(),
            "time_max": self._time_max.tolist(),
        }

    def set_state(self, state: dict) -> None:
        if "count" not in state:
            return
        self._count = np.asarray(state["count"], dtype=np.int64)
        self._time_sum = np.asarray(state["time_sum"], dtype=np.int64)
        self._time_max = np.asarray(state["time_max"], dtype=np.int64)


@register_probe("dispatcher_stats")
class DispatcherStatsProbe(Probe):
    """Per-dispatcher arrival-batch statistics.

    How traffic actually split over dispatchers: totals, the largest
    single batch, per-dispatcher active rounds, and a coefficient of
    variation of the totals (0 for the paper's symmetric split).
    """

    description = (
        "per-dispatcher batch statistics: totals, max batch, "
        "traffic-split imbalance"
    )
    fields = frozenset({"batch"})

    def __init__(self) -> None:
        super().__init__()
        self._rounds = 0
        self._jobs: np.ndarray | None = None
        self._max_batch: np.ndarray | None = None
        self._active: np.ndarray | None = None

    def bind(self, ctx: ProbeContext) -> None:
        super().bind(ctx)
        m = ctx.num_dispatchers
        self._jobs = np.zeros(m, dtype=np.int64)
        self._max_batch = np.zeros(m, dtype=np.int64)
        self._active = np.zeros(m, dtype=np.int64)

    def observe_block(self, block: ProbeBlock) -> None:
        batch = block.batch
        self._rounds += block.length
        self._jobs += batch.sum(axis=0)
        np.maximum(self._max_batch, batch.max(axis=0), out=self._max_batch)
        self._active += (batch > 0).sum(axis=0)

    def totals(self) -> np.ndarray:
        """Jobs each dispatcher received over the run."""
        return self._jobs.copy()

    def summary(self) -> dict[str, float]:
        if self._jobs is None or self._rounds == 0:
            return {
                "rounds": 0.0,
                "total_jobs": 0.0,
                "mean_batch": float("nan"),
                "max_batch": 0.0,
                "imbalance": float("nan"),
            }
        total = int(self._jobs.sum())
        active = int(self._active.sum())
        mean_total = total / self._jobs.size
        return {
            "rounds": float(self._rounds),
            "total_jobs": float(total),
            "mean_batch": total / active if active else float("nan"),
            "max_batch": float(self._max_batch.max()),
            "imbalance": (
                float(self._jobs.std() / mean_total) if mean_total else float("nan")
            ),
        }

    def merge(self, other: "Probe") -> None:
        self._check_merge(other)
        if self._jobs is None or other._jobs is None:
            raise ValueError("cannot merge unbound dispatcher_stats probes")
        if self._jobs.size != other._jobs.size:
            raise ValueError("dispatcher_stats merge needs matching dispatcher counts")
        self._rounds += other._rounds
        self._jobs += other._jobs
        np.maximum(self._max_batch, other._max_batch, out=self._max_batch)
        self._active += other._active

    def get_state(self) -> dict:
        if self._jobs is None:
            return {"rounds": 0}
        return {
            "rounds": self._rounds,
            "jobs": self._jobs.tolist(),
            "max_batch": self._max_batch.tolist(),
            "active": self._active.tolist(),
        }

    def set_state(self, state: dict) -> None:
        if "jobs" not in state:
            return
        self._rounds = int(state["rounds"])
        self._jobs = np.asarray(state["jobs"], dtype=np.int64)
        self._max_batch = np.asarray(state["max_batch"], dtype=np.int64)
        self._active = np.asarray(state["active"], dtype=np.int64)


@register_probe("windowed_mean")
class WindowedMeanProbe(Probe):
    """Mean response time per window of rounds (a time series, not one
    number -- the drift between early and late windows is a convergence
    / instability signal the whole-run mean hides).

    Sums are integer-exact, so reference and fast kernels agree bitwise
    however differently they batch their response recording.
    """

    description = (
        "mean response time per window of rounds (windowed time series "
        "+ first-to-last drift)"
    )
    fields = frozenset()
    wants_responses = True
    #: Window sums pool disjoint response sets, so the additive merge is
    #: also the correct shard fold.
    partitionable = True

    def __init__(self, window: int = 1000) -> None:
        super().__init__()
        window = int(window)
        if window < 1:
            raise ValueError("window must be >= 1 round")
        self.window = window
        self._sums: np.ndarray | None = None
        self._counts: np.ndarray | None = None

    def bind(self, ctx: ProbeContext) -> None:
        super().bind(ctx)
        windows = -(-ctx.rounds // self.window)  # ceil
        self._sums = np.zeros(windows, dtype=np.int64)
        self._counts = np.zeros(windows, dtype=np.int64)

    def observe_responses(
        self,
        rounds: np.ndarray,
        times: np.ndarray,
        counts: np.ndarray,
        servers: np.ndarray,
    ) -> None:
        index = np.asarray(rounds, dtype=np.int64) // self.window
        times = np.asarray(times, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        np.add.at(self._sums, index, times * counts)
        np.add.at(self._counts, index, counts)

    def means(self) -> np.ndarray:
        """Per-window mean response time (NaN for empty windows)."""
        if self._sums is None:
            return np.zeros(0, dtype=np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                self._counts > 0, self._sums / self._counts, float("nan")
            )

    def summary(self) -> dict[str, float]:
        means = self.means()
        filled = np.flatnonzero(~np.isnan(means)) if means.size else np.zeros(0, int)
        first = float(means[filled[0]]) if filled.size else float("nan")
        last = float(means[filled[-1]]) if filled.size else float("nan")
        return {
            "window": float(self.window),
            "windows": float(means.size),
            "completed": float(self._counts.sum()) if self._counts is not None else 0.0,
            "first_mean": first,
            "last_mean": last,
            "drift": last / first if filled.size and first else float("nan"),
        }

    def probe_kwargs(self) -> dict:
        return {"window": self.window}

    def merge(self, other: "Probe") -> None:
        self._check_merge(other)
        if other.window != self.window:
            raise ValueError(
                f"cannot merge window={other.window} into window={self.window}"
            )
        if self._sums is None:
            self._sums = np.zeros(0, dtype=np.int64)
            self._counts = np.zeros(0, dtype=np.int64)
        if other._sums is None:
            return
        if other._sums.size > self._sums.size:
            self._sums = np.pad(self._sums, (0, other._sums.size - self._sums.size))
            self._counts = np.pad(
                self._counts, (0, other._counts.size - self._counts.size)
            )
        self._sums[: other._sums.size] += other._sums
        self._counts[: other._counts.size] += other._counts

    def get_state(self) -> dict:
        if self._sums is None:
            return {"sums": [], "counts": []}
        return {"sums": self._sums.tolist(), "counts": self._counts.tolist()}

    def set_state(self, state: dict) -> None:
        self._sums = np.asarray(state.get("sums", ()), dtype=np.int64)
        self._counts = np.asarray(state.get("counts", ()), dtype=np.int64)


@register_probe("windowed_stability")
class WindowedStabilityProbe(Probe):
    """Mean total queue length per window of rounds -- the time-windowed
    stability indicator for nonstationary scenarios.

    A stationary stable run shows flat window means; a flash crowd shows
    a hump that drains back down; an inadmissible (or churn-starved)
    configuration shows monotone growth.  ``growth`` -- the last window's
    mean over the first's -- is the headline drift number.

    Sums are integer-exact, so all kernels agree bitwise.
    """

    description = (
        "mean total queue length per window of rounds (time-windowed "
        "queue-growth indicator for nonstationary scenarios)"
    )
    fields = frozenset({"queues"})
    #: Each shard's column-sums add up to the global total queue length
    #: round by round, so the shard fold is additive on sums; counts are
    #: round tallies every shard sees in full, hence the max-fold in
    #: :meth:`merge_partition`.
    partitionable = True

    def __init__(self, window: int = 1000) -> None:
        super().__init__()
        window = int(window)
        if window < 1:
            raise ValueError("window must be >= 1 round")
        self.window = window
        self._sums: np.ndarray | None = None
        self._counts: np.ndarray | None = None

    def bind(self, ctx: ProbeContext) -> None:
        super().bind(ctx)
        windows = -(-ctx.rounds // self.window)  # ceil
        self._sums = np.zeros(windows, dtype=np.int64)
        self._counts = np.zeros(windows, dtype=np.int64)

    def observe_block(self, block: ProbeBlock) -> None:
        index = (
            block.start_round + np.arange(block.length, dtype=np.int64)
        ) // self.window
        np.add.at(self._sums, index, block.queues.sum(axis=1))
        np.add.at(self._counts, index, 1)

    def means(self) -> np.ndarray:
        """Per-window mean total queue length (NaN for empty windows)."""
        if self._sums is None:
            return np.zeros(0, dtype=np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                self._counts > 0, self._sums / self._counts, float("nan")
            )

    def summary(self) -> dict[str, float]:
        means = self.means()
        filled = np.flatnonzero(~np.isnan(means)) if means.size else np.zeros(0, int)
        first = float(means[filled[0]]) if filled.size else float("nan")
        last = float(means[filled[-1]]) if filled.size else float("nan")
        peak = int(filled[np.argmax(means[filled])]) if filled.size else -1
        return {
            "window": float(self.window),
            "windows": float(means.size),
            "first_mean": first,
            "last_mean": last,
            "peak_mean": float(means[peak]) if peak >= 0 else float("nan"),
            "peak_window": float(peak),
            "growth": last / first if filled.size and first else float("nan"),
        }

    def probe_kwargs(self) -> dict:
        return {"window": self.window}

    def _align(self, other: "WindowedStabilityProbe") -> None:
        if other.window != self.window:
            raise ValueError(
                f"cannot merge window={other.window} into window={self.window}"
            )
        if self._sums is None:
            self._sums = np.zeros(0, dtype=np.int64)
            self._counts = np.zeros(0, dtype=np.int64)
        if other._sums is not None and other._sums.size > self._sums.size:
            self._sums = np.pad(self._sums, (0, other._sums.size - self._sums.size))
            self._counts = np.pad(
                self._counts, (0, other._counts.size - self._counts.size)
            )

    def merge(self, other: "Probe") -> None:
        """Pool replications / time shards (disjoint round multisets)."""
        self._check_merge(other)
        self._align(other)
        if other._sums is None:
            return
        self._sums[: other._sums.size] += other._sums
        self._counts[: other._counts.size] += other._counts

    def merge_partition(self, other: "Probe") -> None:
        """Fold a server shard: add its column-sums, keep round tallies."""
        self._check_merge(other)
        self._align(other)
        if other._sums is None:
            return
        self._sums[: other._sums.size] += other._sums
        # Every shard observed every round; adding tallies would divide
        # the pooled sums by the shard count.
        np.maximum(
            self._counts[: other._counts.size],
            other._counts,
            out=self._counts[: other._counts.size],
        )

    def get_state(self) -> dict:
        if self._sums is None:
            return {"sums": [], "counts": []}
        return {"sums": self._sums.tolist(), "counts": self._counts.tolist()}

    def set_state(self, state: dict) -> None:
        self._sums = np.asarray(state.get("sums", ()), dtype=np.int64)
        self._counts = np.asarray(state.get("counts", ()), dtype=np.int64)


@register_probe("herding")
class HerdingSignalProbe(Probe):
    """Per-round co-targeting: the coordination-failure mechanism.

    Measures how hard dispatchers pile onto the same servers within a
    round -- the largest single-server pile-up (``max_spike``), its
    per-round average, and the RMS deviation from rate-proportional
    placement (``mean_imbalance``), exactly the statistics of
    :class:`repro.analysis.herding.HerdingStats` (the wrapper-based
    ``HerdingProbe``), now engine-fed and so available on the fast
    kernels too.  On the sized engine the pile-up is measured in
    admitted work units.

    The probe is *partitionable*: instead of needing the global
    ``received`` matrix, it keeps per-round sufficient statistics that
    each server shard can accumulate over its own columns -- the round
    totals, the per-round spike, ``sum(r_s^2)``, and the
    rate-weighted sum ``sum(rates_s * r_s)`` plus the shard's rate sum
    and ``sum(rates_s^2)``.  :meth:`merge_partition` folds shards
    element-wise (totals/squares add, spikes max) and :meth:`summary`
    recovers the global deviation algebraically::

        sum_s (r_s - T*mu_s)^2
            = sum(r^2) - 2*(T/R)*sum(rates*r) + (T/R)^2 * sum(rates^2)

    with ``R`` the global rate sum and ``mu_s = rates_s / R`` -- the
    same quantity ``HerdingStats`` computes element-wise.
    """

    description = (
        "per-round co-targeting spikes and placement imbalance "
        "(herding mechanism, cf. analysis.herding)"
    )
    fields = frozenset({"received"})
    #: Per-round sufficient statistics accumulate per server shard and
    #: fold element-wise (see class docstring).
    partitionable = True

    def __init__(self) -> None:
        super().__init__()
        self._rates: np.ndarray | None = None
        # Per-round component series, as per-block arrays concatenated
        # lazily (each list collapses to one array on demand).
        self._totals: list[np.ndarray] = []  # int64: sum_s r_s
        self._spikes: list[np.ndarray] = []  # int64: max_s r_s
        self._sq: list[np.ndarray] = []  # int64: sum_s r_s^2
        self._rate_w: list[np.ndarray] = []  # float64: sum_s rates_s*r_s
        self._rate_sum = 0.0
        self._rate_sq = 0.0
        self._num_servers = 0

    def bind(self, ctx: ProbeContext) -> None:
        super().bind(ctx)
        rates = np.asarray(ctx.rates, dtype=np.float64)
        self._rates = rates.copy()
        self._rate_sum = float(rates.sum())
        self._rate_sq = float((rates * rates).sum())
        self._num_servers = int(rates.size)

    def observe_block(self, block: ProbeBlock) -> None:
        received = block.received
        self._totals.append(received.sum(axis=1))
        self._spikes.append(received.max(axis=1))
        self._sq.append((received * received).sum(axis=1))
        self._rate_w.append(received @ self._rates)

    def _series(self, which: list[np.ndarray], dtype) -> np.ndarray:
        """Collapse a per-block list into its single concatenated array."""
        if not which:
            return np.zeros(0, dtype=dtype)
        if len(which) > 1:
            which[:] = [np.concatenate(which)]
        return np.asarray(which[0], dtype=dtype)

    def summary(self) -> dict[str, float]:
        totals = self._series(self._totals, np.int64)
        active = totals > 0
        rounds = int(active.sum())
        if rounds == 0 or self._rate_sum == 0.0 or self._num_servers == 0:
            return {
                "rounds": 0.0,
                "max_spike": 0.0,
                "mean_spike": 0.0,
                "mean_imbalance": 0.0,
            }
        spikes = self._series(self._spikes, np.int64)[active]
        sq = self._series(self._sq, np.int64)[active].astype(np.float64)
        rate_w = self._series(self._rate_w, np.float64)[active]
        t = totals[active].astype(np.float64)
        scale = t / self._rate_sum
        # Sum of squared deviations from the rate-proportional share;
        # clamp tiny negative cancellation residue before the sqrt.
        ss = sq - 2.0 * scale * rate_w + scale * scale * self._rate_sq
        deviation = np.sqrt(np.maximum(ss, 0.0) / self._num_servers)
        return {
            "rounds": float(rounds),
            "max_spike": float(spikes.max()),
            "mean_spike": float(int(spikes.sum()) / rounds),
            "mean_imbalance": float((deviation / t).sum() / rounds),
        }

    def merge(self, other: "Probe") -> None:
        """Pool replications / consecutive time shards of the *same
        system*: the per-round series concatenate along the round axis
        (rate scalars must match -- different systems cannot pool)."""
        self._check_merge(other)
        self._check_same_system(other)
        self._totals.append(other._series(other._totals, np.int64))
        self._spikes.append(other._series(other._spikes, np.int64))
        self._sq.append(other._series(other._sq, np.int64))
        self._rate_w.append(other._series(other._rate_w, np.float64))

    def merge_partition(self, other: "Probe") -> None:
        """Fold in a *server shard* over the same rounds: totals,
        squares and rate-weighted sums add element-wise, spikes max,
        and the rate scalars accumulate toward the global values."""
        self._check_merge(other)
        totals = self._series(self._totals, np.int64)
        other_totals = other._series(other._totals, np.int64)
        if totals.size != other_totals.size:
            raise ValueError(
                "server shards of one simulation must cover the same "
                f"rounds; got {totals.size} vs {other_totals.size}"
            )
        self._totals = [totals + other_totals]
        self._spikes = [
            np.maximum(
                self._series(self._spikes, np.int64),
                other._series(other._spikes, np.int64),
            )
        ]
        self._sq = [
            self._series(self._sq, np.int64)
            + other._series(other._sq, np.int64)
        ]
        self._rate_w = [
            self._series(self._rate_w, np.float64)
            + other._series(other._rate_w, np.float64)
        ]
        self._rate_sum += other._rate_sum
        self._rate_sq += other._rate_sq
        self._num_servers += other._num_servers

    def _check_same_system(self, other: "HerdingSignalProbe") -> None:
        if (
            self._num_servers != other._num_servers
            or self._rate_sum != other._rate_sum
            or self._rate_sq != other._rate_sq
        ):
            raise ValueError(
                "herding merge pools runs of the same system; rate "
                "scalars differ (use merge_partition for server shards)"
            )

    def get_state(self) -> dict:
        return {
            "totals": self._series(self._totals, np.int64).tolist(),
            "spikes": self._series(self._spikes, np.int64).tolist(),
            "sq": self._series(self._sq, np.int64).tolist(),
            "rate_weighted": self._series(self._rate_w, np.float64).tolist(),
            "rate_sum": self._rate_sum,
            "rate_sq": self._rate_sq,
            "num_servers": self._num_servers,
        }

    def set_state(self, state: dict) -> None:
        self._totals = [np.asarray(state.get("totals", ()), dtype=np.int64)]
        self._spikes = [np.asarray(state.get("spikes", ()), dtype=np.int64)]
        self._sq = [np.asarray(state.get("sq", ()), dtype=np.int64)]
        self._rate_w = [
            np.asarray(state.get("rate_weighted", ()), dtype=np.float64)
        ]
        self._rate_sum = float(state.get("rate_sum", 0.0))
        self._rate_sq = float(state.get("rate_sq", 0.0))
        self._num_servers = int(state.get("num_servers", 0))

