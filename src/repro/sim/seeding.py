"""Random-stream management for reproducible, comparable simulations.

The paper evaluates all policies under *identical* arrival and departure
processes ("we use the same random seed across all algorithms", Section 6).
We realize this with three independent generator streams per simulation:

* ``arrivals``   -- drives the per-dispatcher arrival processes,
* ``departures`` -- drives the per-server service processes,
* ``policy``     -- drives any randomness inside the dispatching policy.

Arrival and departure draws never depend on policy decisions (a server's
*capacity* ``c_s(t)`` is drawn each round regardless of how many jobs are
present), so two simulations differing only in policy consume the arrival
and departure streams identically -- common random numbers by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SimulationStreams", "spawn_streams", "derive_seed"]

_STREAM_LABELS = ("arrivals", "departures", "policy")


@dataclass(frozen=True)
class SimulationStreams:
    """The three independent random streams of one simulation run."""

    arrivals: np.random.Generator
    departures: np.random.Generator
    policy: np.random.Generator


def spawn_streams(seed: int | np.random.SeedSequence) -> SimulationStreams:
    """Create the three streams from one master seed.

    The same master seed always yields the same three streams, and the
    streams are statistically independent of each other.
    """
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    children = root.spawn(len(_STREAM_LABELS))
    gens = {
        label: np.random.Generator(np.random.PCG64(child))
        for label, child in zip(_STREAM_LABELS, children)
    }
    return SimulationStreams(**gens)


def derive_seed(*components: int | str | float) -> int:
    """Deterministically combine experiment coordinates into a seed.

    Used by the experiment runner so that (system, load, replication)
    define the workload realization while the policy does not:
    ``derive_seed(base, n, m, round(rho * 1000), rep)``.
    """
    mixed: list[int] = []
    for component in components:
        if isinstance(component, str):
            mixed.append(int.from_bytes(component.encode(), "little") % (2**32))
        elif isinstance(component, float):
            mixed.append(int(round(component * 1_000_003)) % (2**32))
        else:
            mixed.append(int(component) % (2**32))
    return int(np.random.SeedSequence(mixed).generate_state(1, dtype=np.uint64)[0])
