"""Synchronous-round cluster simulator (the model of Section 2)."""

from .arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    ModulatedPoissonArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from .backends import (
    EngineBackend,
    FastBackend,
    ReferenceBackend,
    available_backends,
    backend_descriptions,
    make_backend,
    register_backend,
)
from .batchstore import BatchQueueStore, SizedBatchQueueStore
from .engine import Simulation, SimulationConfig, SimulationResult, simulate
from .metrics import QueueLengthSeries, ResponseTimeHistogram
from .seeding import SimulationStreams, derive_seed, spawn_streams
from .server import ServerQueue
from .service import DeterministicService, GeometricService, ServiceProcess, TraceService
from .sized import (
    BimodalSize,
    DeterministicSize,
    GeometricSize,
    JobSizeDistribution,
    SizedServerQueue,
    SizedSimulation,
    SizedSimulationResult,
)
from .sizedbackends import (
    SizedEngineBackend,
    SizedFastBackend,
    SizedReferenceBackend,
    available_sized_backends,
    make_sized_backend,
    register_sized_backend,
    sized_backend_descriptions,
)

__all__ = [
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "simulate",
    "EngineBackend",
    "ReferenceBackend",
    "FastBackend",
    "register_backend",
    "make_backend",
    "available_backends",
    "backend_descriptions",
    "BatchQueueStore",
    "SizedBatchQueueStore",
    "SizedEngineBackend",
    "SizedReferenceBackend",
    "SizedFastBackend",
    "register_sized_backend",
    "make_sized_backend",
    "available_sized_backends",
    "sized_backend_descriptions",
    "ServerQueue",
    "ResponseTimeHistogram",
    "QueueLengthSeries",
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "TraceArrivals",
    "ModulatedPoissonArrivals",
    "ServiceProcess",
    "GeometricService",
    "DeterministicService",
    "TraceService",
    "JobSizeDistribution",
    "DeterministicSize",
    "GeometricSize",
    "BimodalSize",
    "SizedServerQueue",
    "SizedSimulation",
    "SizedSimulationResult",
    "SimulationStreams",
    "spawn_streams",
    "derive_seed",
]
