"""Ablation: SCD's Eq. 18 estimator under asymmetric dispatcher traffic.

The paper's evaluation splits arrivals evenly over the dispatchers, which
is exactly the regime where ``a_est = m * a_d`` is unbiased per
dispatcher.  Real entry points are rarely symmetric.  Here the same total
load is split with increasing skew (dispatcher d's share proportional to
``skew^d``), and SCD's scaled estimator is compared against the oracle.

Expected shape: with mild skew the compensation argument (Eq. 19 holds in
aggregate) keeps Eq. 18 close to the oracle and ahead of SED.  Extreme
skew is a genuine limitation of Eq. 18: the dominant dispatcher's
``m * a_d`` over-estimates the total several-fold, drifting its decisions
toward weighted-random, and SED can edge ahead *on the mean* -- while
SCD with the oracle estimator stays in front, isolating estimation (not
coordination) as the cause.  SCD remains stable throughout (Appendix D
covers any bounded estimator).
"""

import numpy as np
import pytest

import repro
from _common import BENCH_ROUNDS, BENCH_SEED

TABLE_SPEC = (
    "ablation_skewed_arrivals",
    "Ablation: SCD under skewed dispatcher traffic (n=100, m=10, rho=0.9)",
    ["skew", "max share", "scd (Eq.18)", "scd (oracle)", "sed"],
)

SYSTEM = repro.paper_system(100, 10, "u1_10")
RHO = 0.9
#: Geometric skew factors: 1.0 = the paper's symmetric split.
SKEWS = (1.0, 1.5, 3.0)


def run_with_skew(skew: float) -> dict[str, float]:
    """One skew level as a declarative experiment cell set.

    ``WorkloadSpec.skewed`` realizes the geometric split (dispatcher d's
    share proportional to ``skew^d`` at equal total load) and seeds the
    realization from the workload name, so all three policies see the
    same skewed arrivals.
    """
    workload = repro.WorkloadSpec.skewed(skew)
    weights = skew ** np.arange(SYSTEM.num_dispatchers, dtype=np.float64)
    oracle = repro.PolicySpec.of("scd", estimator="oracle")
    experiment = repro.Experiment(
        policies=("scd", oracle, "sed"),
        systems=SYSTEM,
        loads=RHO,
        workloads=workload,
        rounds=BENCH_ROUNDS,
        base_seed=BENCH_SEED,
    )
    result = experiment.run(keep_results=False)
    return {
        "max_share": float(weights.max() / weights.sum()),
        "scd": result.metric("mean", policy="scd"),
        "scd-oracle": result.metric("mean", policy=oracle.label),
        "sed": result.metric("mean", policy="sed"),
    }


@pytest.mark.parametrize("skew", SKEWS)
def test_skew_cell(benchmark, figure_table, skew):
    means = benchmark.pedantic(run_with_skew, args=(skew,), rounds=1, iterations=1)
    figure_table.add(
        skew, means["max_share"], means["scd"], means["scd-oracle"], means["sed"]
    )
    benchmark.extra_info.update(
        {k: round(v, 3) for k, v in means.items() if k != "max_share"}
    )
    # Coordination itself survives any skew: the oracle-estimated SCD
    # stays ahead of SED.  Eq. 18 additionally holds its own up to
    # moderate skew; at extreme skew its over-estimation is a documented
    # limitation (see module docstring), so it is not asserted there.
    assert means["scd-oracle"] < means["sed"], means
    if skew <= 1.5:
        assert means["scd"] < means["sed"], means


def test_mild_skew_costs_little(benchmark):
    def pair():
        return {"sym": run_with_skew(1.0)["scd"], "skewed": run_with_skew(1.5)["scd"]}

    means = benchmark.pedantic(pair, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 3) for k, v in means.items()})
    assert means["skewed"] < 1.6 * means["sym"], means
