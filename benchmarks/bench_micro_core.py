"""Micro-benchmarks of the core primitives (supporting Section 6.3).

Times the individual building blocks the per-decision figures aggregate:
the IWL computation (Algorithm 3, loop vs vectorized), the probability
solvers (Algorithm 1 vs Algorithm 4 vs the vectorized form), and the
greedy batch assignment (heap vs water-fill hybrid).  These quantify where
the O(n log n) total comes from and document the constant-factor effect of
vectorization on this substrate.
"""

import numpy as np
import pytest

from repro.core.iwl import compute_iwl, compute_iwl_reference
from repro.core.probabilities import (
    scd_probabilities,
    scd_probabilities_loop,
    scd_probabilities_quadratic,
)
from repro.policies.greedy import greedy_batch_assign, greedy_batch_assign_heap

TABLE_SPEC = (
    "micro_core",
    "Core primitive micro-benchmarks (see pytest-benchmark table)",
    ["group", "note"],
)

SIZES = (100, 400)


def instance(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    queues = rng.integers(0, 50, size=n)
    rates = rng.uniform(1.0, 10.0, size=n)
    arrivals = max(2, int(0.5 * rates.sum()))
    return queues, rates, arrivals


@pytest.mark.parametrize("n", SIZES)
def test_iwl_vectorized(benchmark, n):
    queues, rates, arrivals = instance(n)
    benchmark(compute_iwl, queues, rates, arrivals)


@pytest.mark.parametrize("n", SIZES)
def test_iwl_reference_loop(benchmark, n):
    queues, rates, arrivals = instance(n)
    benchmark(compute_iwl_reference, queues, rates, arrivals)


@pytest.mark.parametrize("n", SIZES)
def test_probabilities_vectorized(benchmark, n):
    queues, rates, arrivals = instance(n)
    iwl = compute_iwl(queues, rates, arrivals)
    benchmark(scd_probabilities, queues, rates, arrivals, iwl)


@pytest.mark.parametrize("n", SIZES)
def test_probabilities_alg4_loop(benchmark, n):
    queues, rates, arrivals = instance(n)
    iwl = compute_iwl(queues, rates, arrivals)
    benchmark(scd_probabilities_loop, queues, rates, arrivals, iwl)


@pytest.mark.parametrize("n", SIZES)
def test_probabilities_alg1_quadratic(benchmark, n):
    queues, rates, arrivals = instance(n)
    iwl = compute_iwl(queues, rates, arrivals)
    benchmark(scd_probabilities_quadratic, queues, rates, arrivals, iwl)


@pytest.mark.parametrize("n", SIZES)
def test_greedy_hybrid(benchmark, n):
    queues, rates, arrivals = instance(n)
    benchmark(greedy_batch_assign, queues, rates, arrivals)


@pytest.mark.parametrize("n", SIZES)
def test_greedy_heap(benchmark, n):
    queues, rates, arrivals = instance(n)
    benchmark(greedy_batch_assign_heap, queues, rates, arrivals)


def test_alg1_vs_alg4_gap_grows(benchmark, figure_table):
    """The asymptotic claim, as a ratio-of-ratios over SIZES."""
    import time

    def ratios():
        out = {}
        for n in SIZES:
            queues, rates, arrivals = instance(n)
            iwl = compute_iwl(queues, rates, arrivals)
            timings = {}
            for name, fn in [
                ("alg1", scd_probabilities_quadratic),
                ("alg4", scd_probabilities),
            ]:
                best = np.inf
                for _ in range(5):
                    start = time.perf_counter()
                    fn(queues, rates, arrivals, iwl)
                    best = min(best, time.perf_counter() - start)
                timings[name] = best
            out[n] = timings["alg1"] / timings["alg4"]
        return out

    gap = benchmark.pedantic(ratios, rounds=1, iterations=1)
    figure_table.add("alg1/alg4 slowdown", {n: round(v, 1) for n, v in gap.items()})
    assert gap[SIZES[-1]] > gap[SIZES[0]], gap
