"""Figure 6 (Appendix E.1): SCD vs JSQ(2), JIQ, LSQ and WR, mu ~ U[1, 10].

The complementary comparison against the less-competitive techniques, over
the same four systems and a tail panel at n=100, m=10.  Paper shape: SCD
significantly outperforms all four across systems, metrics and loads --
JSQ(2)/JIQ/LSQ ignore heterogeneity, WR ignores queue state.
"""

import pytest

import repro
from _common import (
    BENCH_LOADS,
    CONFIG,
    EXTRA_POLICIES,
    mean_response_rows,
    run_policy_over_loads,
)

TABLE_SPEC = (
    "fig6_additional_policies",
    "Figure 6: SCD vs JSQ(2)/JIQ/LSQ/WR (mu ~ U[1,10])",
    ["system", "policy", "rho", "mean", "p99", "p99.9"],
)

SYSTEMS = repro.PAPER_SYSTEMS["u1_10"]
TAIL_SYSTEM = repro.paper_system(100, 10, "u1_10")


@pytest.mark.parametrize("system", SYSTEMS, ids=lambda s: s.name)
@pytest.mark.parametrize("policy", EXTRA_POLICIES)
def test_fig6_cell(benchmark, figure_table, system, policy):
    summaries = benchmark.pedantic(
        run_policy_over_loads, args=(policy, system), rounds=1, iterations=1
    )
    for rho, summary in summaries.items():
        benchmark.extra_info[f"mean@{rho}"] = round(summary["mean"], 3)
    mean_response_rows(figure_table, system, policy, summaries)
    assert all(s["mean"] >= 1.0 for s in summaries.values())


@pytest.mark.parametrize("rho", repro.TAIL_LOADS)
def test_fig6_scd_dominates_tails(benchmark, figure_table, rho):
    def tails():
        results = repro.tail_experiment(list(EXTRA_POLICIES), TAIL_SYSTEM, rho, CONFIG)
        return {
            p: repro.tail_quantiles(r.histogram, (1e-3,))[1e-3]
            for p, r in results.items()
        }

    quantiles = benchmark.pedantic(tails, rounds=1, iterations=1)
    benchmark.extra_info.update(quantiles)
    for policy, value in quantiles.items():
        figure_table.add("n100/m10-tail", policy, rho, float("nan"), float("nan"), value)
    assert quantiles["scd"] == min(quantiles.values()), quantiles
