"""Figure 4b: response-time tails under high heterogeneity (mu ~ U[1,100]).

n=100, m=10 at rho in {0.70, 0.90, 0.99}.  Paper shape: SCD improves on
the second best by an even larger margin than in Figure 3b (>2.3x at the
1e-4 level, rho=0.99), and TWF/JSQ tails degrade by an order of magnitude
even at rho=0.7.
"""

import pytest

import repro
from _common import CONFIG, MAIN_POLICIES

TABLE_SPEC = (
    "fig4b_tail_ccdf",
    "Figure 4b: response-time tails, n=100, m=10 (mu ~ U[1,100])",
    ["rho", "policy", "mean", "p99", "p99.9", "p99.99", "max"],
)

SYSTEM = repro.paper_system(100, 10, "u1_100")
LEVELS = (1e-2, 1e-3, 1e-4)


@pytest.mark.parametrize("rho", repro.TAIL_LOADS)
@pytest.mark.parametrize("policy", MAIN_POLICIES)
def test_fig4b_tail(benchmark, figure_table, policy, rho):
    result = benchmark.pedantic(
        repro.run_simulation,
        args=(policy, SYSTEM, rho),
        kwargs={"config": CONFIG},
        rounds=1,
        iterations=1,
    )
    hist = result.histogram
    quantiles = repro.tail_quantiles(hist, LEVELS)
    figure_table.add(
        rho,
        policy,
        hist.mean(),
        quantiles[1e-2],
        quantiles[1e-3],
        quantiles[1e-4],
        hist.max_response_time,
    )
    benchmark.extra_info["p99.9"] = quantiles[1e-3]
    assert hist.total > 0


def test_fig4b_twf_tail_collapses(benchmark):
    """The heterogeneity-oblivious tail is far worse than SCD's here."""

    def tails():
        results = repro.tail_experiment(["scd", "twf"], SYSTEM, 0.9, CONFIG)
        return {
            p: repro.tail_quantiles(r.histogram, (1e-3,))[1e-3]
            for p, r in results.items()
        }

    quantiles = benchmark.pedantic(tails, rounds=1, iterations=1)
    benchmark.extra_info.update(quantiles)
    assert quantiles["twf"] >= 2 * quantiles["scd"], quantiles
