"""Figure 5: dispatching-decision run-times, mu ~ U[1, 10].

For n in {100, 200, 300, 400} servers at rho = 0.99, measures how long one
dispatcher takes to compute its round's assignment under SCD via
Algorithm 4, SCD via Algorithm 1, JSQ, and SED.  Two instruments:

* pytest-benchmark statistics on a representative snapshot (this module's
  timing table), and
* a CDF over many distinct snapshots written to results/ (the figure's
  actual protocol).

Paper shape (their C++, our Python -- compare shapes): SCD-Alg4 scales
like JSQ and SED; SCD-Alg1 is clearly slower and grows faster with n.
Note the paper's Figure 5 legend says "Algorithm 2/3"; per its Section 6.3
text the curves are Algorithms 1 and 4.
"""

import numpy as np
import pytest

import repro
from repro.analysis.runtime import (
    RUNTIME_TECHNIQUES,
    collect_snapshots,
    measure_decision_times,
    runtime_cdf_summary,
)

from _common import BENCH_SEED

TABLE_SPEC = (
    "fig5_runtime",
    "Figure 5: per-decision run-time CDF landmarks, rho=0.99 (mu ~ U[1,10]), microseconds",
    ["n", "technique", "p10_us", "p50_us", "p90_us", "p99_us"],
)

PROFILE = "u1_10"
SERVER_COUNTS = (100, 200, 300, 400)
NUM_SNAPSHOTS = 120

_snapshot_cache: dict[int, tuple[list, np.ndarray]] = {}


def snapshots_for(n: int) -> tuple[list, np.ndarray]:
    if n not in _snapshot_cache:
        system = repro.SystemSpec(n, 10, PROFILE)
        snaps = collect_snapshots(
            system, rho=0.99, rounds=60, seed=BENCH_SEED, max_snapshots=NUM_SNAPSHOTS
        )
        _snapshot_cache[n] = (snaps, system.rates())
    return _snapshot_cache[n]


@pytest.mark.parametrize("n", SERVER_COUNTS)
@pytest.mark.parametrize("technique", sorted(RUNTIME_TECHNIQUES))
def test_fig5_decision_time(benchmark, figure_table, n, technique):
    snaps, rates = snapshots_for(n)
    fn = RUNTIME_TECHNIQUES[technique]
    snap = snaps[len(snaps) // 2]

    # pytest-benchmark timing on one representative high-load snapshot.
    benchmark(fn, snap.queues, rates, snap.batch_size, 10)

    # Full CDF across snapshots (the figure's protocol).
    times = measure_decision_times(technique, snaps, rates, 10)
    summary = runtime_cdf_summary(times)
    figure_table.add(
        n,
        technique,
        summary["p10_us"],
        summary["p50_us"],
        summary["p90_us"],
        summary["p99_us"],
    )
    benchmark.extra_info["median_us_over_snapshots"] = round(summary["p50_us"], 1)


@pytest.mark.parametrize("n", SERVER_COUNTS)
def test_fig5_alg1_slower_than_alg4(benchmark, n):
    """The asymptotic gap the figure demonstrates, per server count."""
    snaps, rates = snapshots_for(n)

    def medians():
        return {
            tech: float(np.median(measure_decision_times(tech, snaps, rates, 10)))
            for tech in ("scd-alg1", "scd-alg4")
        }

    result = benchmark.pedantic(medians, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v * 1e6, 1) for k, v in result.items()})
    assert result["scd-alg1"] > result["scd-alg4"], result
