"""Figure 4a: mean response time vs offered load, mu ~ U[1, 100].

The high-heterogeneity (accelerator) regime over the same four systems.
Paper shape: as Figure 3a but with larger gaps -- heterogeneity-oblivious
policies (TWF, JSQ) degrade much further.
"""

import pytest

import repro
from _common import (
    BENCH_LOADS,
    CONFIG,
    MAIN_POLICIES,
    mean_response_rows,
    run_policy_over_loads,
)

TABLE_SPEC = (
    "fig4a_mean_response",
    "Figure 4a: mean response time vs offered load (mu ~ U[1,100])",
    ["system", "policy", "rho", "mean", "p99", "p99.9"],
)

SYSTEMS = repro.PAPER_SYSTEMS["u1_100"]


@pytest.mark.parametrize("system", SYSTEMS, ids=lambda s: s.name)
@pytest.mark.parametrize("policy", MAIN_POLICIES)
def test_fig4a_cell(benchmark, figure_table, system, policy):
    summaries = benchmark.pedantic(
        run_policy_over_loads, args=(policy, system), rounds=1, iterations=1
    )
    for rho, summary in summaries.items():
        benchmark.extra_info[f"mean@{rho}"] = round(summary["mean"], 3)
    mean_response_rows(figure_table, system, policy, summaries)
    assert all(s["mean"] >= 1.0 for s in summaries.values())


@pytest.mark.parametrize("system", SYSTEMS, ids=lambda s: s.name)
def test_fig4a_heterogeneity_obliviousness_punished(benchmark, system):
    """TWF (rate-blind) trails SCD clearly in this regime at high load."""
    rho = max(BENCH_LOADS)

    def head_to_head():
        return {
            policy: repro.run_simulation(policy, system, rho, CONFIG).mean_response_time
            for policy in ("scd", "twf")
        }

    means = benchmark.pedantic(head_to_head, rounds=1, iterations=1)
    benchmark.extra_info.update({p: round(v, 3) for p, v in means.items()})
    assert means["scd"] < means["twf"], means
