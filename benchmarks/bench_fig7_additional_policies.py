"""Figure 7 (Appendix E.1): SCD vs JSQ(2), JIQ, LSQ and WR, mu ~ U[1, 100].

As Figure 6, under high heterogeneity.  Paper shape: the gaps widen; the
heterogeneity-oblivious samplers (JSQ(2), JIQ, LSQ) fall furthest behind
because uniform sampling starves the fast servers.
"""

import pytest

import repro
from _common import (
    CONFIG,
    EXTRA_POLICIES,
    mean_response_rows,
    run_policy_over_loads,
)

TABLE_SPEC = (
    "fig7_additional_policies",
    "Figure 7: SCD vs JSQ(2)/JIQ/LSQ/WR (mu ~ U[1,100])",
    ["system", "policy", "rho", "mean", "p99", "p99.9"],
)

SYSTEMS = repro.PAPER_SYSTEMS["u1_100"]
TAIL_SYSTEM = repro.paper_system(100, 10, "u1_100")


@pytest.mark.parametrize("system", SYSTEMS, ids=lambda s: s.name)
@pytest.mark.parametrize("policy", EXTRA_POLICIES)
def test_fig7_cell(benchmark, figure_table, system, policy):
    summaries = benchmark.pedantic(
        run_policy_over_loads, args=(policy, system), rounds=1, iterations=1
    )
    for rho, summary in summaries.items():
        benchmark.extra_info[f"mean@{rho}"] = round(summary["mean"], 3)
    mean_response_rows(figure_table, system, policy, summaries)
    assert all(s["mean"] >= 1.0 for s in summaries.values())


@pytest.mark.parametrize("rho", repro.TAIL_LOADS)
def test_fig7_scd_beats_all(benchmark, figure_table, rho):
    def means():
        results = repro.tail_experiment(list(EXTRA_POLICIES), TAIL_SYSTEM, rho, CONFIG)
        return {p: r.mean_response_time for p, r in results.items()}

    values = benchmark.pedantic(means, rounds=1, iterations=1)
    benchmark.extra_info.update({p: round(v, 3) for p, v in values.items()})
    for policy, value in values.items():
        figure_table.add("n100/m10-tail", policy, rho, value, float("nan"), float("nan"))
    assert values["scd"] == min(values.values()), values
