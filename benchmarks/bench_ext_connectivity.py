"""Extension: partial dispatcher-server connectivity (Section 7, problem 2).

The paper leaves open how stochastic coordination should handle
dispatchers that reach only a subset of servers.  Our SCD implements the
natural restriction -- each dispatcher solves its optimization over its
reachable servers -- and this bench maps the cost of shrinking visibility:
each dispatcher sees a random fraction f of the fleet.

Expected shape: graceful degradation.  Full visibility is best; moderate
masks cost little (different dispatchers cover each other's blind spots);
very sparse masks approach power-of-d-like behavior.
"""

import numpy as np
import pytest

import repro
from _common import BENCH_SEED, CONFIG

TABLE_SPEC = (
    "ext_connectivity",
    "Extension: SCD under partial connectivity (n=100, m=10, mu ~ U[1,10], rho=0.9)",
    ["visible fraction", "mean", "p99"],
)

SYSTEM = repro.paper_system(100, 10, "u1_10")
RHO = 0.9
FRACTIONS = (1.0, 0.6, 0.3, 0.1)


def mask_for(fraction: float) -> np.ndarray | None:
    if fraction >= 1.0:
        return None
    rng = np.random.default_rng(BENCH_SEED + 1)
    m, n = SYSTEM.num_dispatchers, SYSTEM.num_servers
    mask = rng.random((m, n)) < fraction
    # Guarantee each dispatcher reaches at least one server, and every
    # server is reachable by someone (else the system loses capacity).
    for d in range(m):
        if not mask[d].any():
            mask[d, rng.integers(n)] = True
    unreached = np.flatnonzero(~mask.any(axis=0))
    for s in unreached:
        mask[rng.integers(m), s] = True
    return mask


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_connectivity_cell(benchmark, figure_table, fraction):
    kwargs = {"config": CONFIG}
    mask = mask_for(fraction)
    if mask is not None:
        kwargs["connectivity"] = mask

    result = benchmark.pedantic(
        repro.run_simulation,
        args=("scd", SYSTEM, RHO),
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    summary = result.summary()
    figure_table.add(fraction, summary["mean"], summary["p99"])
    benchmark.extra_info["mean"] = round(summary["mean"], 3)
    assert result.total_arrived == result.total_departed + result.final_queued


def test_degradation_is_graceful(benchmark):
    """Moderate masking costs little relative to full visibility."""

    def pair():
        full = repro.run_simulation("scd", SYSTEM, RHO, CONFIG)
        masked = repro.run_simulation(
            "scd", SYSTEM, RHO, CONFIG, connectivity=mask_for(0.6)
        )
        return {
            "full": full.mean_response_time,
            "f=0.6": masked.mean_response_time,
        }

    means = benchmark.pedantic(pair, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 3) for k, v in means.items()})
    assert means["f=0.6"] < 2.0 * means["full"], means
