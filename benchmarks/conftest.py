"""Benchmark-suite fixtures: per-module figure tables written to results/."""

from __future__ import annotations

import pytest

from _common import FigureTable


@pytest.fixture(scope="module")
def figure_table(request):
    """A per-module accumulator; the table file is written at module end.

    Bench modules declare their table via module-level ``TABLE_SPEC =
    (name, title, headers)``.
    """
    name, title, headers = request.module.TABLE_SPEC
    table = FigureTable(name, title, headers)
    yield table
    if table.rows:
        table.write()
