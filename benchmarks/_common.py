"""Shared infrastructure for the benchmark suite.

Every evaluation figure of the paper has a ``bench_*`` module here.  Each
benchmark cell runs one (policy, system, load-grid) simulation exactly once
(``benchmark.pedantic(rounds=1)``) -- a simulation *is* the workload being
timed -- and deposits the measured response-time numbers both in
``benchmark.extra_info`` and into a per-figure text table written under
``benchmarks/results/``.

Scaling knobs (environment variables):

``REPRO_BENCH_ROUNDS``
    Simulation rounds per cell (default 1200).  The paper uses 1e5; the
    qualitative shape -- who wins, roughly by how much -- is stable far
    below that, and EXPERIMENTS.md records the horizon used.
``REPRO_BENCH_LOADS``
    Comma-separated offered loads (default ``0.7,0.9,0.99``).
``REPRO_BENCH_WORKERS``
    Process-pool workers for the per-policy load grids (default 1 =
    serial, so a benchmark cell times the simulation itself; raising it
    speeds up full-suite runs without changing any results -- cell seeds
    are scheduling-independent).
"""

from __future__ import annotations

import os
from pathlib import Path

import repro

RESULTS_DIR = Path(__file__).resolve().parent / "results"

BENCH_ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "1200"))
BENCH_LOADS = tuple(
    float(x) for x in os.environ.get("REPRO_BENCH_LOADS", "0.7,0.9,0.99").split(",")
)
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

#: Policies in the main-body figures (3 and 4).
MAIN_POLICIES = ("scd", "twf", "jsq", "sed", "hjsq(2)", "hjiq", "hlsq")
#: Policies in the appendix figures (6 and 7).
EXTRA_POLICIES = ("scd", "jsq(2)", "jiq", "lsq", "wr")

CONFIG = repro.ExperimentConfig(rounds=BENCH_ROUNDS, base_seed=BENCH_SEED)


def grid_experiment(
    policies, system: repro.SystemSpec, loads=None
) -> repro.Experiment:
    """The benchmark suite's standard declarative grid for one system."""
    return repro.Experiment(
        policies=policies,
        systems=system,
        loads=loads if loads is not None else BENCH_LOADS,
        rounds=BENCH_ROUNDS,
        base_seed=BENCH_SEED,
    )


def run_policy_over_loads(policy: str, system: repro.SystemSpec) -> dict[float, dict]:
    """Simulate one policy over the load grid; returns per-load summaries.

    Declared as a one-policy :class:`repro.Experiment`; the default
    workload keeps results bit-identical to the historical per-cell
    ``run_simulation`` loop.
    """
    result = grid_experiment(policy, system).run(workers=BENCH_WORKERS)
    out: dict[float, dict] = {}
    for record in result.records:
        summary = record.result.summary()
        summary["p_1e-3"] = float(
            repro.tail_quantiles(record.result.histogram, (1e-3,))[1e-3]
        )
        out[record.rho] = summary
    return out


class FigureTable:
    """Accumulates one figure's rows and writes them to results/ on close."""

    def __init__(self, name: str, title: str, headers: list[str]) -> None:
        self.name = name
        self.title = title
        self.headers = headers
        self.rows: list[list[object]] = []

    def add(self, *row: object) -> None:
        self.rows.append(list(row))

    def write(self) -> Path:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        text = repro.format_table(
            self.headers,
            self.rows,
            title=f"{self.title}\n(rounds/cell: {BENCH_ROUNDS}, "
            f"loads: {BENCH_LOADS}, seed: {BENCH_SEED})",
        )
        path = RESULTS_DIR / f"{self.name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return path


def mean_response_rows(
    table: FigureTable, system: repro.SystemSpec, policy: str, summaries
) -> None:
    """Standard row layout for the mean-response figures."""
    for rho, summary in summaries.items():
        table.add(
            f"n{system.num_servers}/m{system.num_dispatchers}",
            policy,
            rho,
            summary["mean"],
            summary["p99"],
            summary["p_1e-3"],
        )
