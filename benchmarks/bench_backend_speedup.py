"""Engine-backend speedup benchmark: reference vs fast round kernel.

Times identical simulations on both engine backends over a grid of
system sizes and policies, prints a comparison table, and writes a
machine-readable perf record (``BENCH_engine.json``) so the repo's
performance trajectory is tracked run over run.

Run as a script (CI runs this as a non-gating smoke step)::

    PYTHONPATH=src python benchmarks/bench_backend_speedup.py
    PYTHONPATH=src python benchmarks/bench_backend_speedup.py \
        --sizes 100x50 --rounds 10000 --policies jsq

The default grid includes the acceptance configuration: 100 servers /
50 dispatchers at 10^4 rounds, where the fast backend's native batch
policies (jsq, rr, wr) must clear a 3x rounds/sec speedup (checked by
``--check``; informational otherwise).

Under ``pytest benchmarks`` a single smoke cell runs and validates the
record's shape without asserting timings (CI boxes are too noisy for a
gating speedup threshold).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

import repro

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
DEFAULT_SIZES = ("20x10", "50x20", "100x50")
DEFAULT_POLICIES = ("jsq", "rr", "wr")
#: Acceptance bar: fast/reference rounds-per-second at the 100x50 grid point.
TARGET_SPEEDUP = 3.0
TARGET_SIZE = "100x50"


def _parse_size(token: str) -> tuple[int, int]:
    n_text, m_text = token.lower().split("x")
    return int(n_text), int(m_text)


def _build_sim(
    policy: str, n: int, m: int, rho: float, rounds: int, seed: int, backend: str
) -> repro.Simulation:
    system = repro.SystemSpec(num_servers=n, num_dispatchers=m)
    rates = system.rates()
    return repro.Simulation(
        rates=rates,
        policy=repro.make_policy(policy),
        arrivals=repro.PoissonArrivals(system.lambdas(rho)),
        service=repro.GeometricService(rates),
        config=repro.SimulationConfig(rounds=rounds, seed=seed, backend=backend),
    )


def time_cell(
    policy: str,
    n: int,
    m: int,
    rho: float,
    rounds: int,
    seed: int,
    repeats: int,
) -> dict:
    """Best-of-``repeats`` wall time per backend for one grid point."""
    cell: dict = {
        "policy": policy,
        "num_servers": n,
        "num_dispatchers": m,
        "rho": rho,
        "rounds": rounds,
        "seed": seed,
    }
    means = {}
    for backend in ("reference", "fast"):
        best = float("inf")
        for _ in range(repeats):
            sim = _build_sim(policy, n, m, rho, rounds, seed, backend)
            start = time.perf_counter()
            result = sim.run()
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
        means[backend] = result.mean_response_time
        cell[f"{backend}_seconds"] = best
        cell[f"{backend}_rounds_per_sec"] = rounds / best
    cell["speedup"] = cell["fast_rounds_per_sec"] / cell["reference_rounds_per_sec"]
    # Native deterministic policies must agree exactly; stochastic native
    # paths are statistically equivalent, so record both means.
    cell["reference_mean_response"] = means["reference"]
    cell["fast_mean_response"] = means["fast"]
    return cell


def run_grid(
    sizes: tuple[str, ...],
    policies: tuple[str, ...],
    rho: float,
    rounds: int,
    seed: int,
    repeats: int,
) -> dict:
    """Time every (size, policy) cell and assemble the perf record."""
    cells = []
    for token in sizes:
        n, m = _parse_size(token)
        for policy in policies:
            cell = time_cell(policy, n, m, rho, rounds, seed, repeats)
            cells.append(cell)
            print(
                f"n={n:4d} m={m:3d} {policy:6s} "
                f"ref={cell['reference_rounds_per_sec']:9.0f} r/s  "
                f"fast={cell['fast_rounds_per_sec']:9.0f} r/s  "
                f"speedup={cell['speedup']:.2f}x"
            )
    headline = [
        c
        for c in cells
        if f"{c['num_servers']}x{c['num_dispatchers']}" == TARGET_SIZE
    ]
    return {
        "benchmark": "backend_speedup",
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "parameters": {
            "sizes": list(sizes),
            "policies": list(policies),
            "rho": rho,
            "rounds": rounds,
            "seed": seed,
            "repeats": repeats,
        },
        "cells": cells,
        "headline": {
            "target_size": TARGET_SIZE,
            "target_speedup": TARGET_SPEEDUP,
            "best_speedup": max((c["speedup"] for c in headline), default=None),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", nargs="+", default=list(DEFAULT_SIZES), metavar="NxM")
    parser.add_argument("--policies", nargs="+", default=list(DEFAULT_POLICIES))
    parser.add_argument("--rho", type=float, default=0.9)
    parser.add_argument("--rounds", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero unless the {TARGET_SIZE} headline speedup "
        f"reaches {TARGET_SPEEDUP}x",
    )
    args = parser.parse_args(argv)

    record = run_grid(
        tuple(args.sizes),
        tuple(args.policies),
        args.rho,
        args.rounds,
        args.seed,
        args.repeats,
    )
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"perf record written to {args.out}")

    best = record["headline"]["best_speedup"]
    if best is not None:
        print(f"headline ({TARGET_SIZE}): best speedup {best:.2f}x")
    if args.check:
        if best is None:
            print(f"--check requires a {TARGET_SIZE} cell in --sizes")
            return 2
        if best < TARGET_SPEEDUP:
            print(f"FAIL: {best:.2f}x < {TARGET_SPEEDUP}x")
            return 1
        print(f"OK: {best:.2f}x >= {TARGET_SPEEDUP}x")
    return 0


def test_backend_speedup_record(tmp_path):
    """Smoke: one tiny grid point produces a well-formed perf record."""
    record = run_grid(("10x4",), ("jsq",), rho=0.9, rounds=200, seed=0, repeats=1)
    out = tmp_path / "BENCH_engine.json"
    out.write_text(json.dumps(record))
    loaded = json.loads(out.read_text())
    assert loaded["benchmark"] == "backend_speedup"
    (cell,) = loaded["cells"]
    assert cell["reference_rounds_per_sec"] > 0
    assert cell["fast_rounds_per_sec"] > 0
    # jsq is deterministic: both backends simulate the identical run.
    assert cell["reference_mean_response"] == cell["fast_mean_response"]


if __name__ == "__main__":
    sys.exit(main())
