"""Engine-backend speedup benchmark: reference vs fast round kernel.

Times identical simulations on both engine backends -- the unsized
round kernel (:mod:`repro.sim.backends`) *and* the sized-job kernel
(:mod:`repro.sim.sizedbackends`) -- over a grid of system sizes and
policies, prints a comparison table, and writes a machine-readable perf
record (``BENCH_engine.json``) so the repo's performance trajectory is
tracked run over run.

Run as a script (CI runs this as a non-gating smoke step)::

    PYTHONPATH=src python benchmarks/bench_backend_speedup.py
    PYTHONPATH=src python benchmarks/bench_backend_speedup.py \
        --sizes 100x50 --rounds 10000 --policies jsq --sized-sizes 100x50

The default grid includes both acceptance configurations at 100 servers
/ 50 dispatchers and 10^4 rounds: the unsized kernel must clear a 3x
rounds/sec speedup and the sized kernel a 2x speedup (checked by
``--check``; informational otherwise), plus a larger 200x100 point for
the scaling trajectory.  A probe-overhead cell times the fast kernel
with the default probe set against every built-in probe attached
(``--probe-sizes``); ``--check`` also bars that overhead at 15%.  A
sharded cell (``--sharded-sizes``, default 200x100) times the sharded
kernel's serial strategy against the fast kernel it partitions;
``--check`` bars the serial shard overhead at 25% (a wall-clock
*speedup* cannot gate in CI -- the container has one CPU -- so the gate
is that the partition machinery itself stays cheap).  Every cell also
records the process peak RSS (``ru_maxrss``, a monotone high-water mark
over the run) so the perf record tracks memory alongside throughput.

Two hardware-dependent cells gate conditionally:

* A compiled cell (``--compiled-sizes``, default 200x100) times the
  ``compiled`` kernel against both ``reference`` and ``fast`` on ``rr``
  (the policy with a jitted whole-block round loop).  ``--check`` bars
  the compiled/reference speedup at 10x at 200x100 **only when numba is
  importable**; without numba the cell still runs (recording the
  fallback's numbers plus ``numba_active: false``) but the gate
  auto-skips -- the fallback *is* the fast kernel, which has its own
  bar.
* A multi-CPU profile cell (``--process-sizes``, default 200x100) times
  ``sharded:N:process`` -- the async round pipeline -- against the fast
  kernel.  ``--check`` requires a real wall-clock speedup (>1.0x) **only
  when the box has at least two CPUs**; on 1-CPU boxes the cell records
  its numbers and the gate auto-skips.

A scenario cell (``--scenario-sizes``, default 100x50) times the fast
kernel under the nonstationary built-ins -- a diurnal rate curve and a
server-churn schedule -- against the identical stationary cell;
``--check`` bars the worst scenario overhead at 10% (the block
pre-sampler and capacity-mask adapter must not tax the hot path).

A mean-field cell (``--meanfield-sizes``, default 10000x100) times the
analytical fluid-limit backend against the fast kernel on a homogeneous
``random`` cell -- the regime where the mean-field ODE is provably the
n -> infinity limit and the per-round cost is independent of n --
recording both the wall-clock speedup and the trajectory error between
the two mean response times.  ``--check`` bars the speedup at 100x at
the 10^4-server point and the trajectory error at 15% everywhere the
cell runs.  The cell has its own round budget (``--meanfield-rounds``,
default 2000): the *fast* leg costs ~30 ms/round at 10^4 servers, so it
cannot ride the 10^4-round default grid horizon.

A service cell (``--service-sizes``, default 50x20) stands up the whole
coordination service in-process (job manager, coordinator, HTTP API,
one worker) and times HTTP submit to the first ``cell-finished`` event
on the streaming endpoint, recording the overhead beyond the cell's own
simulation time; ``--check`` bars that overhead at a generous 2s (a
regression guard on polling/buffering, not a noise-sensitive timing).

Under ``pytest benchmarks`` a single smoke cell per engine (sharded,
compiled, and process included) runs and validates the record's shape
without asserting timings (CI boxes are too noisy for a gating speedup
threshold).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

try:
    import resource
except ImportError:  # pragma: no cover - Windows has no resource module
    resource = None

import numpy as np

import repro

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
DEFAULT_SIZES = ("20x10", "50x20", "100x50", "200x100")
DEFAULT_POLICIES = ("jsq", "rr", "wr")
DEFAULT_SIZED_SIZES = ("20x10", "100x50")
DEFAULT_SIZED_POLICIES = ("jsq", "rr", "wrr")
DEFAULT_PROBE_SIZES = ("100x50",)
DEFAULT_SHARDED_SIZES = ("200x100",)
DEFAULT_COMPILED_SIZES = ("200x100",)
DEFAULT_PROCESS_SIZES = ("200x100",)
DEFAULT_CHECKPOINT_SIZES = ("100x50",)
DEFAULT_SCENARIO_SIZES = ("100x50",)
DEFAULT_SERVICE_SIZES = ("50x20",)
DEFAULT_MEANFIELD_SIZES = ("10000x100",)
#: Round budget for the mean-field cell -- separate from the grid
#: horizon because the *fast* leg costs ~30 ms/round at 10^4 servers.
MEANFIELD_ROUNDS = 2000
#: Checkpoint cadence for the run-lifecycle overhead cell (blocks).
CHECKPOINT_EVERY = 4
#: Every built-in probe beyond the default collectors (the worst-case
#: observability load for the overhead cell).
ALL_EXTRA_PROBES = ("server_stats", "dispatcher_stats", "windowed_mean", "herding")
#: Acceptance bars: fast/reference rounds-per-second at the 100x50 grid
#: point, per engine.
TARGET_SPEEDUP = 3.0
SIZED_TARGET_SPEEDUP = 2.0
TARGET_SIZE = "100x50"
#: Acceptance bar: running ALL built-in probes on the fast kernel may
#: cost at most this fraction over the default probe set.
PROBE_OVERHEAD_TARGET = 0.15
#: Acceptance bar: the sharded kernel's *serial* strategy may cost at
#: most this fraction over the fast kernel it partitions.  (A
#: wall-clock speedup cannot gate on the 1-CPU CI container; what must
#: hold everywhere is that the shard machinery itself stays cheap.)
SHARD_OVERHEAD_TARGET = 0.25
#: Acceptance bar: a checkpointed run (snapshot every
#: :data:`CHECKPOINT_EVERY` blocks, telemetry streaming) may cost at
#: most this fraction over the plain fast-kernel run it wraps.
CHECKPOINT_OVERHEAD_TARGET = 0.10
#: Acceptance bar: a nonstationary scenario on the fast kernel (diurnal
#: rate modulation or a churn capacity mask) may cost at most this
#: fraction over the identical stationary cell.
SCENARIO_OVERHEAD_TARGET = 0.10
#: The scenario legs the overhead cell times, against a ``None``
#: (stationary) baseline.  jsq deliberately: churn masking disables
#: rr's cross-round dispatch batching, which is a *policy* cost, not
#: the scenario machinery this cell gates.
SCENARIO_BENCH = (
    ("diurnal", "diurnal:period=512"),
    ("churn", "churn:down=0.4,period=2"),
)
#: Acceptance bar: submit-to-first-streamed-metric latency through the
#: whole service stack (HTTP submit -> coordinator lease -> worker cell
#: -> telemetry streamed back over the events endpoint), *excluding*
#: the cell's own simulation time.  Generous: the bound protects
#: against pathological polling/buffering regressions, not noise.
SERVICE_FIRST_METRIC_TARGET = 2.0
#: Acceptance bar: compiled/reference rounds-per-second at the 200x100
#: grid point -- gated by ``--check`` only when numba is importable.
COMPILED_TARGET_SPEEDUP = 10.0
COMPILED_TARGET_SIZE = "200x100"
#: The policy the compiled cell times: deterministic (bit-exact across
#: all three backends) and owner of a jitted whole-block round loop.
COMPILED_POLICY = "rr"
#: Acceptance bar: meanfield/fast rounds-per-second at the
#: 10^4-server grid point.  The analytic backend's cost is independent
#: of n, so the bar is deliberately aggressive -- at 10^4 servers the
#: fast kernel is ~400x slower in practice.
MEANFIELD_TARGET_SPEEDUP = 100.0
MEANFIELD_TARGET_SIZE = "10000x100"
#: Acceptance bar: relative gap between the fast kernel's measured mean
#: response time and the fluid limit's, on the same horizon.  For the
#: homogeneous ``random`` cell the fluid limit is exact as n -> infinity
#: (each server sees an independent thinned Poisson stream), so the gap
#: is finite-n sampling noise plus the O(1/n) correction.
MEANFIELD_TRAJECTORY_TOL = 0.15
#: The policy and rate profile the mean-field cell times.  ``random``
#: deliberately: its fluid arrival map is a closed-form Poisson-tail
#: convolution (the jsq(d) choice drift needs sub-round ODE steps and
#: is not the headline speed path), and ``homogeneous`` deliberately:
#: under random dispatch a heterogeneous fleet is fluid-unstable unless
#: rho < mu_min / mean(mu).
MEANFIELD_POLICY = "random"
MEANFIELD_PROFILE = "homogeneous"


def _parse_size(token: str) -> tuple[int, int]:
    n_text, m_text = token.lower().split("x")
    return int(n_text), int(m_text)


def _peak_rss_kb() -> int | None:
    """Process peak resident set size in KiB (``ru_maxrss``).

    A monotone high-water mark over the process lifetime: per-cell
    values record "the largest footprint seen up to and including this
    cell", so growth between cells attributes added memory while flat
    values mean the cell fit inside an earlier peak.  ``ru_maxrss`` is
    KiB on Linux but bytes on macOS; None where unavailable (Windows).
    """
    if resource is None:
        return None
    peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    return peak // 1024 if sys.platform == "darwin" else peak


def _build_sim(
    policy: str,
    n: int,
    m: int,
    rho: float,
    rounds: int,
    seed: int,
    backend: str,
    probes: tuple = (),
    scenario: str | None = None,
    profile: str = "u1_10",
    warmup: int = 0,
) -> repro.Simulation:
    system = repro.SystemSpec(num_servers=n, num_dispatchers=m, profile=profile)
    rates = system.rates()
    return repro.Simulation(
        rates=rates,
        policy=repro.make_policy(policy),
        arrivals=repro.PoissonArrivals(system.lambdas(rho)),
        service=repro.GeometricService(rates),
        config=repro.SimulationConfig(
            rounds=rounds, warmup=warmup, seed=seed, backend=backend,
            probes=probes, scenario=scenario,
        ),
    )


def _build_sized_sim(
    policy: str,
    n: int,
    m: int,
    rho: float,
    rounds: int,
    seed: int,
    backend: str,
    mean_size: float,
) -> repro.SizedSimulation:
    system = repro.SystemSpec(num_servers=n, num_dispatchers=m)
    rates = system.rates()
    sizes = repro.GeometricSize(mean_size)
    jobs_per_round = rho * rates.sum() / sizes.mean
    return repro.SizedSimulation(
        rates=rates,
        policy=repro.make_policy(policy),
        arrivals=repro.PoissonArrivals(np.full(m, jobs_per_round / m)),
        service=repro.GeometricService(rates),
        sizes=sizes,
        rounds=rounds,
        seed=seed,
        backend=backend,
    )


def time_cell(
    policy: str,
    n: int,
    m: int,
    rho: float,
    rounds: int,
    seed: int,
    repeats: int,
    engine: str = "unsized",
    mean_size: float = 3.0,
) -> dict:
    """Best-of-``repeats`` wall time per backend for one grid point."""
    cell: dict = {
        "engine": engine,
        "policy": policy,
        "num_servers": n,
        "num_dispatchers": m,
        "rho": rho,
        "rounds": rounds,
        "seed": seed,
    }
    if engine == "sized":
        cell["mean_size"] = mean_size
    means = {}
    for backend in ("reference", "fast"):
        best = float("inf")
        for _ in range(repeats):
            if engine == "sized":
                sim = _build_sized_sim(
                    policy, n, m, rho, rounds, seed, backend, mean_size
                )
            else:
                sim = _build_sim(policy, n, m, rho, rounds, seed, backend)
            start = time.perf_counter()
            result = sim.run()
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
        means[backend] = result.mean_response_time
        cell[f"{backend}_seconds"] = best
        cell[f"{backend}_rounds_per_sec"] = rounds / best
    cell["speedup"] = cell["fast_rounds_per_sec"] / cell["reference_rounds_per_sec"]
    # Native deterministic policies must agree exactly; stochastic native
    # paths are statistically equivalent, so record both means.
    cell["reference_mean_response"] = means["reference"]
    cell["fast_mean_response"] = means["fast"]
    cell["peak_rss_kb"] = _peak_rss_kb()
    return cell


def time_sharded_cell(
    policy: str,
    n: int,
    m: int,
    rho: float,
    rounds: int,
    seed: int,
    repeats: int,
    shards: int = 2,
) -> dict:
    """Sharded kernel (serial strategy) against the fast kernel it splits.

    On a single CPU the serial shard loop cannot be *faster* than fast
    -- it runs the same arithmetic plus the partition machinery -- so
    the tracked quantity is the overhead fraction, gated by ``--check``
    at :data:`SHARD_OVERHEAD_TARGET`.
    """
    cell: dict = {
        "engine": "sharded",
        "policy": policy,
        "num_servers": n,
        "num_dispatchers": m,
        "rho": rho,
        "rounds": rounds,
        "seed": seed,
        "shards": shards,
        "strategy": "serial",
    }
    means = {}
    for label, backend in (("fast", "fast"), ("sharded", f"sharded:{shards}")):
        best = float("inf")
        for _ in range(repeats):
            sim = _build_sim(policy, n, m, rho, rounds, seed, backend)
            start = time.perf_counter()
            result = sim.run()
            best = min(best, time.perf_counter() - start)
        means[label] = result.mean_response_time
        cell[f"{label}_seconds"] = best
        cell[f"{label}_rounds_per_sec"] = rounds / best
    cell["shard_overhead_fraction"] = (
        cell["sharded_seconds"] / cell["fast_seconds"] - 1.0
    )
    cell["fast_mean_response"] = means["fast"]
    cell["sharded_mean_response"] = means["sharded"]
    cell["peak_rss_kb"] = _peak_rss_kb()
    return cell


def time_compiled_cell(
    policy: str,
    n: int,
    m: int,
    rho: float,
    rounds: int,
    seed: int,
    repeats: int,
) -> dict:
    """The ``compiled`` kernel against reference AND fast.

    Records whether the jitted paths were actually live
    (``numba_active``): without numba the compiled backend falls back to
    the fast kernel's numpy paths, so the cell then documents fallback
    parity rather than a jit win -- and the ``--check`` gate skips.
    """
    from repro.sim.compiled import numba_enabled

    cell: dict = {
        "engine": "compiled",
        "policy": policy,
        "num_servers": n,
        "num_dispatchers": m,
        "rho": rho,
        "rounds": rounds,
        "seed": seed,
        "numba_active": numba_enabled(),
    }
    means = {}
    for backend in ("reference", "fast", "compiled"):
        best = float("inf")
        for _ in range(repeats):
            sim = _build_sim(policy, n, m, rho, rounds, seed, backend)
            start = time.perf_counter()
            result = sim.run()
            best = min(best, time.perf_counter() - start)
        means[backend] = result.mean_response_time
        cell[f"{backend}_seconds"] = best
        cell[f"{backend}_rounds_per_sec"] = rounds / best
    cell["speedup"] = (
        cell["compiled_rounds_per_sec"] / cell["reference_rounds_per_sec"]
    )
    cell["speedup_vs_fast"] = (
        cell["compiled_rounds_per_sec"] / cell["fast_rounds_per_sec"]
    )
    cell["reference_mean_response"] = means["reference"]
    cell["fast_mean_response"] = means["fast"]
    cell["compiled_mean_response"] = means["compiled"]
    cell["peak_rss_kb"] = _peak_rss_kb()
    return cell


def time_process_cell(
    policy: str,
    n: int,
    m: int,
    rho: float,
    rounds: int,
    seed: int,
    repeats: int,
    shards: int = 2,
) -> dict:
    """Multi-CPU profile: ``sharded:N:process`` (the async round
    pipeline) against the fast kernel, in wall-clock terms.

    Unlike the serial shard cell this one is allowed -- required, on a
    multi-CPU box -- to be genuinely *faster* than fast: the coordinator
    dispatches round ``t+1`` while worker processes resolve block ``t``.
    Records ``cpu_count`` so ``--check`` can gate only where a speedup
    is physically possible.
    """
    cell: dict = {
        "engine": "process",
        "policy": policy,
        "num_servers": n,
        "num_dispatchers": m,
        "rho": rho,
        "rounds": rounds,
        "seed": seed,
        "shards": shards,
        "strategy": "process",
        "cpu_count": os.cpu_count(),
    }
    means = {}
    for label, backend in (
        ("fast", "fast"),
        ("process", f"sharded:{shards}:process"),
    ):
        best = float("inf")
        for _ in range(repeats):
            sim = _build_sim(policy, n, m, rho, rounds, seed, backend)
            start = time.perf_counter()
            result = sim.run()
            best = min(best, time.perf_counter() - start)
        means[label] = result.mean_response_time
        cell[f"{label}_seconds"] = best
        cell[f"{label}_rounds_per_sec"] = rounds / best
    cell["process_speedup"] = cell["fast_seconds"] / cell["process_seconds"]
    cell["fast_mean_response"] = means["fast"]
    cell["process_mean_response"] = means["process"]
    cell["peak_rss_kb"] = _peak_rss_kb()
    return cell


def time_probe_overhead(
    policy: str, n: int, m: int, rho: float, rounds: int, seed: int, repeats: int
) -> dict:
    """Fast-kernel cost of the full built-in probe set vs the default.

    The probe API's acceptance bar: observability must not tax the hot
    path.  Times the same fast-backend simulation with the default
    collectors only and with every built-in probe attached, and reports
    the relative overhead.
    """
    cell: dict = {
        "engine": "probe_overhead",
        "policy": policy,
        "num_servers": n,
        "num_dispatchers": m,
        "rho": rho,
        "rounds": rounds,
        "seed": seed,
        "probes": list(ALL_EXTRA_PROBES),
    }
    for label, probes in (("default", ()), ("all_probes", ALL_EXTRA_PROBES)):
        best = float("inf")
        for _ in range(repeats):
            sim = _build_sim(policy, n, m, rho, rounds, seed, "fast", probes)
            start = time.perf_counter()
            sim.run()
            best = min(best, time.perf_counter() - start)
        cell[f"{label}_seconds"] = best
        cell[f"{label}_rounds_per_sec"] = rounds / best
    cell["overhead_fraction"] = (
        cell["all_probes_seconds"] / cell["default_seconds"] - 1.0
    )
    cell["peak_rss_kb"] = _peak_rss_kb()
    return cell


def time_scenario_overhead(
    policy: str, n: int, m: int, rho: float, rounds: int, seed: int, repeats: int
) -> dict:
    """Scenario tax: nonstationary fast-kernel cells vs the stationary one.

    Runs the identical fast-backend cell three times -- stationary, under
    a diurnal rate curve, and under a server-churn schedule (the legs in
    :data:`SCENARIO_BENCH`) -- and reports each leg's overhead over the
    stationary baseline.  The scenario machinery is a block pre-sampler
    wrapper plus (for churn) a capacity-mask policy adapter, so its cost
    must stay a small fraction of the round loop; ``--check`` bars the
    worst leg at :data:`SCENARIO_OVERHEAD_TARGET`.
    """
    cell: dict = {
        "engine": "scenario_overhead",
        "policy": policy,
        "num_servers": n,
        "num_dispatchers": m,
        "rho": rho,
        "rounds": rounds,
        "seed": seed,
        "scenarios": {label: spec for label, spec in SCENARIO_BENCH},
    }
    for label, scenario in (("stationary", None),) + SCENARIO_BENCH:
        best = float("inf")
        for _ in range(repeats):
            sim = _build_sim(
                policy, n, m, rho, rounds, seed, "fast", scenario=scenario
            )
            start = time.perf_counter()
            result = sim.run()
            best = min(best, time.perf_counter() - start)
        cell[f"{label}_seconds"] = best
        cell[f"{label}_rounds_per_sec"] = rounds / best
        cell[f"{label}_mean_response"] = result.mean_response_time
    for label, _ in SCENARIO_BENCH:
        cell[f"{label}_overhead_fraction"] = (
            cell[f"{label}_seconds"] / cell["stationary_seconds"] - 1.0
        )
    cell["scenario_overhead_fraction"] = max(
        cell[f"{label}_overhead_fraction"] for label, _ in SCENARIO_BENCH
    )
    cell["peak_rss_kb"] = _peak_rss_kb()
    return cell


def time_checkpoint_overhead(
    policy: str, n: int, m: int, rho: float, rounds: int, seed: int, repeats: int
) -> dict:
    """Run-lifecycle tax: a checkpointed fast-kernel run vs a plain one.

    The checkpointed leg pickles the whole simulation plus kernel state
    every :data:`CHECKPOINT_EVERY` blocks (atomic write, hash, probe
    snapshot, telemetry events) -- crash safety must not tax the hot
    path, so ``--check`` bars the overhead at
    :data:`CHECKPOINT_OVERHEAD_TARGET`.
    """
    from repro.runs import Run

    cell: dict = {
        "engine": "checkpoint_overhead",
        "policy": policy,
        "num_servers": n,
        "num_dispatchers": m,
        "rho": rho,
        "rounds": rounds,
        "seed": seed,
        "checkpoint_every": CHECKPOINT_EVERY,
    }
    best = float("inf")
    for _ in range(repeats):
        sim = _build_sim(policy, n, m, rho, rounds, seed, "fast")
        start = time.perf_counter()
        plain_result = sim.run()
        best = min(best, time.perf_counter() - start)
    cell["plain_seconds"] = best
    cell["plain_rounds_per_sec"] = rounds / best
    best = float("inf")
    checkpoints = 0
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as tmp:
            run = Run.create(
                _build_sim(policy, n, m, rho, rounds, seed, "fast"),
                Path(tmp) / "run",
                checkpoint_every=CHECKPOINT_EVERY,
            )
            start = time.perf_counter()
            checkpointed_result = run.execute()
            best = min(best, time.perf_counter() - start)
            checkpoints = len(run.store.rounds())
    cell["checkpointed_seconds"] = best
    cell["checkpointed_rounds_per_sec"] = rounds / best
    cell["checkpoints"] = checkpoints
    cell["checkpoint_overhead_fraction"] = (
        cell["checkpointed_seconds"] / cell["plain_seconds"] - 1.0
    )
    # The checkpointed run replays the identical simulation.
    cell["plain_mean_response"] = plain_result.mean_response_time
    cell["checkpointed_mean_response"] = checkpointed_result.mean_response_time
    cell["peak_rss_kb"] = _peak_rss_kb()
    return cell


def time_service_cell(
    policy: str, n: int, m: int, rho: float, rounds: int, seed: int, repeats: int
) -> dict:
    """Service-stack latency: HTTP submit to first streamed metric.

    Spins up the whole coordination service in-process (job manager,
    federation coordinator, HTTP API, one worker thread), submits a
    single-cell grid by descriptor, and times POST ``/jobs`` until the
    ``cell-finished`` event arrives over the streaming events endpoint.
    The same simulation also runs directly, so the recorded
    ``service_overhead_seconds`` isolates what the service stack itself
    costs (lease round-trips, telemetry polling, HTTP chunking) from
    the cell's simulation time.
    """
    import threading

    from repro.experiments.grid import Experiment
    from repro.service import (
        FederationCoordinator,
        FederationWorker,
        JobManager,
        ServiceAPI,
    )
    from repro.service.client import iter_job_events, submit_job
    from repro.workloads.scenarios import SystemSpec

    cell: dict = {
        "engine": "service_first_metric",
        "policy": policy,
        "num_servers": n,
        "num_dispatchers": m,
        "rho": rho,
        "rounds": rounds,
        "seed": seed,
    }
    experiment = Experiment(
        policies=[policy],
        systems=SystemSpec(n, m),
        loads=[rho],
        rounds=rounds,
        base_seed=seed,
        backend="fast",
    )
    best_plain = float("inf")
    for _ in range(repeats):
        sim = _build_sim(policy, n, m, rho, rounds, seed, "fast")
        start = time.perf_counter()
        sim.run()
        best_plain = min(best_plain, time.perf_counter() - start)
    best = float("inf")
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as tmp:
            manager = JobManager(Path(tmp))
            coordinator = FederationCoordinator(manager, heartbeat_interval=0.5)
            coordinator.start()
            api = ServiceAPI(manager, coordinator)
            api.start()
            # The worker idles until the job lands (it must NOT exit
            # when drained: the queue is empty until the submit below).
            worker = FederationWorker(coordinator.address, poll_interval=0.05)
            thread = threading.Thread(target=worker.run)
            thread.start()
            try:
                start = time.perf_counter()
                created = submit_job(api.url, experiment.describe())
                for event in iter_job_events(api.url, created["job"], follow=True):
                    if event["event"] == "cell-finished":
                        best = min(best, time.perf_counter() - start)
                        break
            finally:
                worker.stop()
                thread.join()
                api.stop()
                coordinator.stop()
                manager.close()
    cell["plain_seconds"] = best_plain
    cell["first_metric_seconds"] = best
    cell["service_overhead_seconds"] = best - best_plain
    cell["peak_rss_kb"] = _peak_rss_kb()
    return cell


def time_meanfield_cell(
    n: int,
    m: int,
    rho: float,
    rounds: int,
    seed: int,
    repeats: int,
) -> dict:
    """The analytic fluid-limit backend against the fast kernel.

    Times the identical :data:`MEANFIELD_POLICY` cell on a
    :data:`MEANFIELD_PROFILE` fleet on both backends (same rounds, same
    ``rounds // 4`` warmup) and records the wall-clock speedup plus the
    relative gap between the two mean response times
    (``trajectory_error``).  The seed only feeds the fast leg -- the
    fluid limit is deterministic -- so the error folds together
    finite-n bias and single-seed sampling noise; ``--check`` bars it
    at :data:`MEANFIELD_TRAJECTORY_TOL`.
    """
    warmup = rounds // 4
    cell: dict = {
        "engine": "meanfield",
        "policy": MEANFIELD_POLICY,
        "profile": MEANFIELD_PROFILE,
        "num_servers": n,
        "num_dispatchers": m,
        "rho": rho,
        "rounds": rounds,
        "warmup": warmup,
        "seed": seed,
    }
    means = {}
    for backend in ("fast", "meanfield"):
        best = float("inf")
        for _ in range(repeats):
            sim = _build_sim(
                MEANFIELD_POLICY, n, m, rho, rounds, seed, backend,
                profile=MEANFIELD_PROFILE, warmup=warmup,
            )
            start = time.perf_counter()
            result = sim.run()
            best = min(best, time.perf_counter() - start)
        means[backend] = result.mean_response_time
        cell[f"{backend}_seconds"] = best
        cell[f"{backend}_rounds_per_sec"] = rounds / best
    cell["speedup"] = (
        cell["meanfield_rounds_per_sec"] / cell["fast_rounds_per_sec"]
    )
    cell["fast_mean_response"] = means["fast"]
    cell["meanfield_mean_response"] = means["meanfield"]
    cell["trajectory_error"] = abs(
        means["fast"] - means["meanfield"]
    ) / abs(means["meanfield"])
    cell["peak_rss_kb"] = _peak_rss_kb()
    return cell


def _best_at_target(cells: list[dict], engine: str) -> float | None:
    at_target = [
        c
        for c in cells
        if c["engine"] == engine
        and f"{c['num_servers']}x{c['num_dispatchers']}" == TARGET_SIZE
    ]
    return max((c["speedup"] for c in at_target), default=None)


def run_grid(
    sizes: tuple[str, ...],
    policies: tuple[str, ...],
    rho: float,
    rounds: int,
    seed: int,
    repeats: int,
    sized_sizes: tuple[str, ...] = (),
    sized_policies: tuple[str, ...] = DEFAULT_SIZED_POLICIES,
    mean_size: float = 3.0,
    probe_sizes: tuple[str, ...] = (),
    sharded_sizes: tuple[str, ...] = (),
    shards: int = 2,
    checkpoint_sizes: tuple[str, ...] = (),
    compiled_sizes: tuple[str, ...] = (),
    process_sizes: tuple[str, ...] = (),
    scenario_sizes: tuple[str, ...] = (),
    service_sizes: tuple[str, ...] = (),
    meanfield_sizes: tuple[str, ...] = (),
    meanfield_rounds: int = MEANFIELD_ROUNDS,
) -> dict:
    """Time every (engine, size, policy) cell and assemble the perf record."""
    cells = []
    grid = [("unsized", sizes, policies), ("sized", sized_sizes, sized_policies)]
    for engine, engine_sizes, engine_policies in grid:
        for token in engine_sizes:
            n, m = _parse_size(token)
            for policy in engine_policies:
                cell = time_cell(
                    policy, n, m, rho, rounds, seed, repeats,
                    engine=engine, mean_size=mean_size,
                )
                cells.append(cell)
                print(
                    f"{engine:7s} n={n:4d} m={m:3d} {policy:6s} "
                    f"ref={cell['reference_rounds_per_sec']:9.0f} r/s  "
                    f"fast={cell['fast_rounds_per_sec']:9.0f} r/s  "
                    f"speedup={cell['speedup']:.2f}x"
                )
    compiled_cells = []
    for token in compiled_sizes:
        n, m = _parse_size(token)
        cell = time_compiled_cell(
            COMPILED_POLICY, n, m, rho, rounds, seed, repeats
        )
        cells.append(cell)
        compiled_cells.append(cell)
        jit = "jit" if cell["numba_active"] else "fallback"
        print(
            f"compiled n={n:4d} m={m:3d} {COMPILED_POLICY:6s} "
            f"ref={cell['reference_rounds_per_sec']:9.0f} r/s  "
            f"compiled={cell['compiled_rounds_per_sec']:9.0f} r/s ({jit})  "
            f"speedup={cell['speedup']:.2f}x"
        )
    shard_overheads = []
    for token in sharded_sizes:
        n, m = _parse_size(token)
        cell = time_sharded_cell("jsq", n, m, rho, rounds, seed, repeats, shards)
        cells.append(cell)
        shard_overheads.append(cell["shard_overhead_fraction"])
        print(
            f"sharded n={n:4d} m={m:3d} jsq    "
            f"fast={cell['fast_rounds_per_sec']:9.0f} r/s  "
            f"sharded:{shards}={cell['sharded_rounds_per_sec']:9.0f} r/s  "
            f"overhead={100 * cell['shard_overhead_fraction']:+.1f}%"
        )
    process_cells = []
    for token in process_sizes:
        n, m = _parse_size(token)
        cell = time_process_cell(
            "jsq", n, m, rho, rounds, seed, repeats, shards
        )
        cells.append(cell)
        process_cells.append(cell)
        print(
            f"process n={n:4d} m={m:3d} jsq    "
            f"fast={cell['fast_rounds_per_sec']:9.0f} r/s  "
            f"sharded:{shards}:process={cell['process_rounds_per_sec']:9.0f} r/s  "
            f"speedup={cell['process_speedup']:.2f}x "
            f"(cpus={cell['cpu_count']})"
        )
    probe_overheads = []
    for token in probe_sizes:
        n, m = _parse_size(token)
        cell = time_probe_overhead("jsq", n, m, rho, rounds, seed, repeats)
        cells.append(cell)
        probe_overheads.append(cell["overhead_fraction"])
        print(
            f"probes  n={n:4d} m={m:3d} jsq    "
            f"default={cell['default_rounds_per_sec']:9.0f} r/s  "
            f"all={cell['all_probes_rounds_per_sec']:9.0f} r/s  "
            f"overhead={100 * cell['overhead_fraction']:+.1f}%"
        )
    scenario_overheads = []
    for token in scenario_sizes:
        n, m = _parse_size(token)
        cell = time_scenario_overhead("jsq", n, m, rho, rounds, seed, repeats)
        cells.append(cell)
        scenario_overheads.append(cell["scenario_overhead_fraction"])
        legs = "  ".join(
            f"{label}={cell[f'{label}_rounds_per_sec']:9.0f} r/s "
            f"({100 * cell[f'{label}_overhead_fraction']:+.1f}%)"
            for label, _ in SCENARIO_BENCH
        )
        print(
            f"scen    n={n:4d} m={m:3d} jsq    "
            f"stationary={cell['stationary_rounds_per_sec']:9.0f} r/s  {legs}"
        )
    checkpoint_overheads = []
    for token in checkpoint_sizes:
        n, m = _parse_size(token)
        cell = time_checkpoint_overhead("jsq", n, m, rho, rounds, seed, repeats)
        cells.append(cell)
        checkpoint_overheads.append(cell["checkpoint_overhead_fraction"])
        print(
            f"ckpt    n={n:4d} m={m:3d} jsq    "
            f"plain={cell['plain_rounds_per_sec']:9.0f} r/s  "
            f"every{CHECKPOINT_EVERY}={cell['checkpointed_rounds_per_sec']:9.0f} r/s  "
            f"overhead={100 * cell['checkpoint_overhead_fraction']:+.1f}%"
        )
    service_overheads = []
    for token in service_sizes:
        n, m = _parse_size(token)
        cell = time_service_cell("jsq", n, m, rho, rounds, seed, repeats)
        cells.append(cell)
        service_overheads.append(cell["service_overhead_seconds"])
        print(
            f"service n={n:4d} m={m:3d} jsq    "
            f"plain={cell['plain_seconds']:6.2f}s  "
            f"first-metric={cell['first_metric_seconds']:6.2f}s  "
            f"overhead={cell['service_overhead_seconds']:+.2f}s"
        )
    meanfield_cells = []
    for token in meanfield_sizes:
        n, m = _parse_size(token)
        cell = time_meanfield_cell(n, m, rho, meanfield_rounds, seed, repeats)
        cells.append(cell)
        meanfield_cells.append(cell)
        print(
            f"mfield  n={n:4d} m={m:3d} {MEANFIELD_POLICY:6s} "
            f"fast={cell['fast_rounds_per_sec']:9.0f} r/s  "
            f"meanfield={cell['meanfield_rounds_per_sec']:9.0f} r/s  "
            f"speedup={cell['speedup']:.0f}x  "
            f"traj-err={100 * cell['trajectory_error']:.1f}%"
        )
    return {
        "benchmark": "backend_speedup",
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "parameters": {
            "sizes": list(sizes),
            "policies": list(policies),
            "sized_sizes": list(sized_sizes),
            "sized_policies": list(sized_policies),
            "probe_sizes": list(probe_sizes),
            "sharded_sizes": list(sharded_sizes),
            "shards": shards,
            "compiled_sizes": list(compiled_sizes),
            "process_sizes": list(process_sizes),
            "checkpoint_sizes": list(checkpoint_sizes),
            "checkpoint_every": CHECKPOINT_EVERY,
            "scenario_sizes": list(scenario_sizes),
            "scenarios": {label: spec for label, spec in SCENARIO_BENCH},
            "service_sizes": list(service_sizes),
            "meanfield_sizes": list(meanfield_sizes),
            "meanfield_rounds": meanfield_rounds,
            "mean_size": mean_size,
            "rho": rho,
            "rounds": rounds,
            "seed": seed,
            "repeats": repeats,
        },
        "cells": cells,
        "headline": {
            "target_size": TARGET_SIZE,
            "target_speedup": TARGET_SPEEDUP,
            "best_speedup": _best_at_target(cells, "unsized"),
            "sized_target_speedup": SIZED_TARGET_SPEEDUP,
            "sized_best_speedup": _best_at_target(cells, "sized"),
            "probe_overhead_target": PROBE_OVERHEAD_TARGET,
            "probe_overhead_fraction": (
                max(probe_overheads) if probe_overheads else None
            ),
            "shard_overhead_target": SHARD_OVERHEAD_TARGET,
            "shard_overhead_fraction": (
                max(shard_overheads) if shard_overheads else None
            ),
            "checkpoint_overhead_target": CHECKPOINT_OVERHEAD_TARGET,
            "checkpoint_overhead_fraction": (
                max(checkpoint_overheads) if checkpoint_overheads else None
            ),
            "scenario_overhead_target": SCENARIO_OVERHEAD_TARGET,
            "scenario_overhead_fraction": (
                max(scenario_overheads) if scenario_overheads else None
            ),
            "service_first_metric_target": SERVICE_FIRST_METRIC_TARGET,
            "service_overhead_seconds": (
                max(service_overheads) if service_overheads else None
            ),
            "compiled_target_size": COMPILED_TARGET_SIZE,
            "compiled_target_speedup": COMPILED_TARGET_SPEEDUP,
            "compiled_best_speedup": max(
                (
                    c["speedup"]
                    for c in compiled_cells
                    if f"{c['num_servers']}x{c['num_dispatchers']}"
                    == COMPILED_TARGET_SIZE
                ),
                default=None,
            ),
            "numba_available": (
                compiled_cells[0]["numba_active"] if compiled_cells else None
            ),
            "process_best_speedup": max(
                (c["process_speedup"] for c in process_cells), default=None
            ),
            "meanfield_target_size": MEANFIELD_TARGET_SIZE,
            "meanfield_target_speedup": MEANFIELD_TARGET_SPEEDUP,
            "meanfield_best_speedup": max(
                (
                    c["speedup"]
                    for c in meanfield_cells
                    if f"{c['num_servers']}x{c['num_dispatchers']}"
                    == MEANFIELD_TARGET_SIZE
                ),
                default=None,
            ),
            "meanfield_trajectory_tolerance": MEANFIELD_TRAJECTORY_TOL,
            "meanfield_trajectory_error": max(
                (c["trajectory_error"] for c in meanfield_cells), default=None
            ),
            "cpu_count": os.cpu_count(),
            "peak_rss_kb": _peak_rss_kb(),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", nargs="+", default=list(DEFAULT_SIZES), metavar="NxM")
    parser.add_argument("--policies", nargs="+", default=list(DEFAULT_POLICIES))
    parser.add_argument(
        "--sized-sizes",
        nargs="*",
        default=list(DEFAULT_SIZED_SIZES),
        metavar="NxM",
        help="grid points for the sized-job kernel (empty list skips it)",
    )
    parser.add_argument(
        "--sized-policies", nargs="+", default=list(DEFAULT_SIZED_POLICIES)
    )
    parser.add_argument(
        "--mean-size",
        type=float,
        default=3.0,
        help="geometric mean job size for the sized cells",
    )
    parser.add_argument(
        "--probe-sizes",
        nargs="*",
        default=list(DEFAULT_PROBE_SIZES),
        metavar="NxM",
        help="grid points for the probe-overhead cell (default probe set "
        "vs all built-in probes on the fast kernel; empty list skips it)",
    )
    parser.add_argument(
        "--sharded-sizes",
        nargs="*",
        default=list(DEFAULT_SHARDED_SIZES),
        metavar="NxM",
        help="grid points for the sharded cell (sharded serial strategy vs "
        "the fast kernel; empty list skips it)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="shard count for the sharded cell",
    )
    parser.add_argument(
        "--compiled-sizes",
        nargs="*",
        default=list(DEFAULT_COMPILED_SIZES),
        metavar="NxM",
        help="grid points for the compiled-kernel cell (compiled vs "
        "reference and fast on rr; empty list skips it)",
    )
    parser.add_argument(
        "--process-sizes",
        nargs="*",
        default=list(DEFAULT_PROCESS_SIZES),
        metavar="NxM",
        help="grid points for the multi-CPU profile cell "
        "(sharded:N:process wall clock vs fast; empty list skips it)",
    )
    parser.add_argument(
        "--checkpoint-sizes",
        nargs="*",
        default=list(DEFAULT_CHECKPOINT_SIZES),
        metavar="NxM",
        help="grid points for the checkpoint-overhead cell (a run "
        f"snapshotting every {CHECKPOINT_EVERY} blocks vs the plain fast "
        "kernel; empty list skips it)",
    )
    parser.add_argument(
        "--scenario-sizes",
        nargs="*",
        default=list(DEFAULT_SCENARIO_SIZES),
        metavar="NxM",
        help="grid points for the scenario-overhead cell (diurnal and "
        "churn legs on the fast kernel vs the identical stationary "
        "cell; empty list skips it)",
    )
    parser.add_argument(
        "--service-sizes",
        nargs="*",
        default=list(DEFAULT_SERVICE_SIZES),
        metavar="NxM",
        help="grid points for the service-latency cell (HTTP submit to "
        "first streamed metric through the in-process coordination "
        "service, minus the cell's own simulation time; empty list "
        "skips it)",
    )
    parser.add_argument(
        "--meanfield-sizes",
        nargs="*",
        default=list(DEFAULT_MEANFIELD_SIZES),
        metavar="NxM",
        help="grid points for the mean-field cell (the analytic "
        f"fluid-limit backend vs the fast kernel on a homogeneous "
        f"{MEANFIELD_POLICY} cell; empty list skips it)",
    )
    parser.add_argument(
        "--meanfield-rounds",
        type=int,
        default=MEANFIELD_ROUNDS,
        help="round budget for the mean-field cell (separate from "
        "--rounds: the fast leg costs ~30 ms/round at 10^4 servers)",
    )
    parser.add_argument("--rho", type=float, default=0.9)
    parser.add_argument("--rounds", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero unless the {TARGET_SIZE} headline speedups "
        f"reach {TARGET_SPEEDUP}x (unsized) and {SIZED_TARGET_SPEEDUP}x "
        f"(sized), the all-probes overhead stays under "
        f"{PROBE_OVERHEAD_TARGET:.0%}, the serial shard overhead "
        f"stays under {SHARD_OVERHEAD_TARGET:.0%}, the checkpointed-run "
        f"overhead stays under {CHECKPOINT_OVERHEAD_TARGET:.0%}, and the "
        f"nonstationary-scenario overhead stays under "
        f"{SCENARIO_OVERHEAD_TARGET:.0%}; also bars "
        f"the compiled kernel at {COMPILED_TARGET_SPEEDUP:.0f}x over "
        f"reference at {COMPILED_TARGET_SIZE} when numba is importable, and "
        f"requires a sharded:N:process wall-clock speedup (>1x) on "
        f"multi-CPU boxes (both auto-skip where the hardware cannot "
        f"deliver them), bars the service submit-to-first-metric "
        f"overhead at {SERVICE_FIRST_METRIC_TARGET:.0f}s, and bars the "
        f"mean-field backend at {MEANFIELD_TARGET_SPEEDUP:.0f}x over "
        f"fast at {MEANFIELD_TARGET_SIZE} with a trajectory error under "
        f"{MEANFIELD_TRAJECTORY_TOL:.0%}",
    )
    args = parser.parse_args(argv)

    record = run_grid(
        tuple(args.sizes),
        tuple(args.policies),
        args.rho,
        args.rounds,
        args.seed,
        args.repeats,
        sized_sizes=tuple(args.sized_sizes),
        sized_policies=tuple(args.sized_policies),
        mean_size=args.mean_size,
        probe_sizes=tuple(args.probe_sizes),
        sharded_sizes=tuple(args.sharded_sizes),
        shards=args.shards,
        checkpoint_sizes=tuple(args.checkpoint_sizes),
        compiled_sizes=tuple(args.compiled_sizes),
        process_sizes=tuple(args.process_sizes),
        scenario_sizes=tuple(args.scenario_sizes),
        service_sizes=tuple(args.service_sizes),
        meanfield_sizes=tuple(args.meanfield_sizes),
        meanfield_rounds=args.meanfield_rounds,
    )
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"perf record written to {args.out}")

    failures = 0
    misconfigured = False
    for label, best, target, grid_ran in (
        ("unsized", record["headline"]["best_speedup"], TARGET_SPEEDUP, bool(args.sizes)),
        (
            "sized",
            record["headline"]["sized_best_speedup"],
            SIZED_TARGET_SPEEDUP,
            bool(args.sized_sizes),
        ),
    ):
        if best is not None:
            print(f"headline ({label} {TARGET_SIZE}): best speedup {best:.2f}x")
        if not args.check or not grid_ran:
            continue
        if best is None:
            print(f"--check requires a {label} {TARGET_SIZE} cell")
            misconfigured = True
        elif best < target:
            print(f"FAIL ({label}): {best:.2f}x < {target}x")
            failures += 1
        else:
            print(f"OK ({label}): {best:.2f}x >= {target}x")
    for label, overhead, target in (
        ("probes", record["headline"]["probe_overhead_fraction"], PROBE_OVERHEAD_TARGET),
        ("sharded", record["headline"]["shard_overhead_fraction"], SHARD_OVERHEAD_TARGET),
        (
            "checkpoint",
            record["headline"]["checkpoint_overhead_fraction"],
            CHECKPOINT_OVERHEAD_TARGET,
        ),
        (
            "scenario",
            record["headline"]["scenario_overhead_fraction"],
            SCENARIO_OVERHEAD_TARGET,
        ),
    ):
        if overhead is None:
            continue
        print(f"headline ({label}): worst overhead {100 * overhead:+.1f}%")
        if args.check:
            if overhead > target:
                print(
                    f"FAIL ({label}): {100 * overhead:.1f}% > "
                    f"{100 * target:.0f}%"
                )
                failures += 1
            else:
                print(
                    f"OK ({label}): {100 * overhead:.1f}% <= "
                    f"{100 * target:.0f}%"
                )
    compiled_best = record["headline"]["compiled_best_speedup"]
    if compiled_best is not None:
        jit = "jit" if record["headline"]["numba_available"] else "fallback"
        print(
            f"headline (compiled {COMPILED_TARGET_SIZE}): "
            f"{compiled_best:.2f}x over reference ({jit})"
        )
    if args.check and args.compiled_sizes:
        if not record["headline"]["numba_available"]:
            print(
                "SKIP (compiled): numba is not importable here, so the "
                f"{COMPILED_TARGET_SPEEDUP:.0f}x bar does not apply "
                "(fallback parity only)"
            )
        elif compiled_best is None:
            print(f"--check requires a compiled {COMPILED_TARGET_SIZE} cell")
            misconfigured = True
        elif compiled_best < COMPILED_TARGET_SPEEDUP:
            print(
                f"FAIL (compiled): {compiled_best:.2f}x < "
                f"{COMPILED_TARGET_SPEEDUP:.0f}x"
            )
            failures += 1
        else:
            print(
                f"OK (compiled): {compiled_best:.2f}x >= "
                f"{COMPILED_TARGET_SPEEDUP:.0f}x"
            )
    service_overhead = record["headline"]["service_overhead_seconds"]
    if service_overhead is not None:
        print(
            f"headline (service): worst submit-to-first-metric overhead "
            f"{service_overhead:+.2f}s"
        )
        if args.check:
            if service_overhead > SERVICE_FIRST_METRIC_TARGET:
                print(
                    f"FAIL (service): {service_overhead:.2f}s > "
                    f"{SERVICE_FIRST_METRIC_TARGET:.1f}s"
                )
                failures += 1
            else:
                print(
                    f"OK (service): {service_overhead:.2f}s <= "
                    f"{SERVICE_FIRST_METRIC_TARGET:.1f}s"
                )
    elif args.check and args.service_sizes:
        print("--check requires a service cell")
        misconfigured = True
    process_best = record["headline"]["process_best_speedup"]
    cpu_count = record["headline"]["cpu_count"]
    if process_best is not None:
        print(
            f"headline (process): {process_best:.2f}x wall-clock vs fast "
            f"on {cpu_count} CPU(s)"
        )
    if args.check and args.process_sizes:
        if cpu_count is None or cpu_count < 2:
            print(
                "SKIP (process): single-CPU box, sharded:N:process cannot "
                "show a wall-clock speedup here"
            )
        elif process_best is None:
            print("--check requires a process cell")
            misconfigured = True
        elif process_best <= 1.0:
            print(f"FAIL (process): {process_best:.2f}x <= 1.00x")
            failures += 1
        else:
            print(f"OK (process): {process_best:.2f}x > 1.00x")
    meanfield_best = record["headline"]["meanfield_best_speedup"]
    trajectory_error = record["headline"]["meanfield_trajectory_error"]
    if meanfield_best is not None:
        print(
            f"headline (meanfield {MEANFIELD_TARGET_SIZE}): "
            f"{meanfield_best:.0f}x over fast, trajectory error "
            f"{100 * trajectory_error:.1f}%"
        )
    if args.check and args.meanfield_sizes:
        if meanfield_best is None:
            print(f"--check requires a meanfield {MEANFIELD_TARGET_SIZE} cell")
            misconfigured = True
        elif meanfield_best < MEANFIELD_TARGET_SPEEDUP:
            print(
                f"FAIL (meanfield): {meanfield_best:.0f}x < "
                f"{MEANFIELD_TARGET_SPEEDUP:.0f}x"
            )
            failures += 1
        else:
            print(
                f"OK (meanfield): {meanfield_best:.0f}x >= "
                f"{MEANFIELD_TARGET_SPEEDUP:.0f}x"
            )
        if trajectory_error is not None:
            if trajectory_error > MEANFIELD_TRAJECTORY_TOL:
                print(
                    f"FAIL (meanfield trajectory): "
                    f"{100 * trajectory_error:.1f}% > "
                    f"{100 * MEANFIELD_TRAJECTORY_TOL:.0f}%"
                )
                failures += 1
            else:
                print(
                    f"OK (meanfield trajectory): "
                    f"{100 * trajectory_error:.1f}% <= "
                    f"{100 * MEANFIELD_TRAJECTORY_TOL:.0f}%"
                )
    if record["headline"]["peak_rss_kb"] is not None:
        print(f"peak RSS: {record['headline']['peak_rss_kb']} KiB")
    if misconfigured:
        return 2
    return 1 if failures else 0


def test_backend_speedup_record(tmp_path):
    """Smoke: one tiny grid point per engine produces a well-formed record."""
    record = run_grid(
        ("10x4",), ("jsq",), rho=0.9, rounds=600, seed=0, repeats=1,
        sized_sizes=("10x4",), sized_policies=("jsq",),
        probe_sizes=("10x4",), sharded_sizes=("10x4",),
        checkpoint_sizes=("10x4",),
        compiled_sizes=("10x4",), process_sizes=("10x4",),
        scenario_sizes=("10x4",),
        service_sizes=("10x4",),
        meanfield_sizes=("10x4",), meanfield_rounds=600,
    )
    out = tmp_path / "BENCH_engine.json"
    out.write_text(json.dumps(record))
    loaded = json.loads(out.read_text())
    assert loaded["benchmark"] == "backend_speedup"
    (
        unsized, sized, compiled, sharded, process, probes, scenario,
        checkpoint, service, meanfield,
    ) = loaded["cells"]
    assert unsized["engine"] == "unsized" and sized["engine"] == "sized"
    for cell in (unsized, sized):
        assert cell["reference_rounds_per_sec"] > 0
        assert cell["fast_rounds_per_sec"] > 0
        # jsq is deterministic: both backends simulate the identical run.
        assert cell["reference_mean_response"] == cell["fast_mean_response"]
    assert compiled["engine"] == "compiled"
    assert isinstance(compiled["numba_active"], bool)
    assert compiled["compiled_rounds_per_sec"] > 0
    # rr is deterministic: all three backends simulate the identical run.
    assert compiled["reference_mean_response"] == compiled["compiled_mean_response"]
    assert compiled["fast_mean_response"] == compiled["compiled_mean_response"]
    assert sharded["engine"] == "sharded"
    assert sharded["shards"] == 2 and sharded["strategy"] == "serial"
    assert sharded["sharded_rounds_per_sec"] > 0
    # Sharding is bit-exact vs fast for the deterministic jsq cell.
    assert sharded["fast_mean_response"] == sharded["sharded_mean_response"]
    assert process["engine"] == "process"
    assert process["strategy"] == "process"
    assert process["cpu_count"] == os.cpu_count()
    assert process["process_rounds_per_sec"] > 0
    # The process strategy replays the identical deterministic run.
    assert process["fast_mean_response"] == process["process_mean_response"]
    assert probes["engine"] == "probe_overhead"
    assert probes["probes"] == list(ALL_EXTRA_PROBES)
    assert probes["default_rounds_per_sec"] > 0
    assert probes["all_probes_rounds_per_sec"] > 0
    assert scenario["engine"] == "scenario_overhead"
    assert scenario["scenarios"] == {
        label: spec for label, spec in SCENARIO_BENCH
    }
    assert scenario["stationary_rounds_per_sec"] > 0
    for label, _ in SCENARIO_BENCH:
        assert scenario[f"{label}_rounds_per_sec"] > 0
        # Every leg replays the same 600 rounds, so the means are finite
        # and the overhead fraction is well-defined.
        assert scenario[f"{label}_mean_response"] > 0
        assert scenario[f"{label}_overhead_fraction"] > -1.0
    assert scenario["scenario_overhead_fraction"] == max(
        scenario[f"{label}_overhead_fraction"] for label, _ in SCENARIO_BENCH
    )
    assert checkpoint["engine"] == "checkpoint_overhead"
    assert checkpoint["checkpoint_every"] == CHECKPOINT_EVERY
    assert checkpoint["checkpoints"] >= 0
    assert checkpoint["checkpointed_rounds_per_sec"] > 0
    # The checkpointed leg replays the identical deterministic run.
    assert checkpoint["plain_mean_response"] == checkpoint["checkpointed_mean_response"]
    assert service["engine"] == "service_first_metric"
    assert service["first_metric_seconds"] > 0
    assert service["first_metric_seconds"] > service["plain_seconds"]
    assert (
        service["service_overhead_seconds"]
        == service["first_metric_seconds"] - service["plain_seconds"]
    )
    assert meanfield["engine"] == "meanfield"
    assert meanfield["policy"] == MEANFIELD_POLICY
    assert meanfield["profile"] == MEANFIELD_PROFILE
    assert meanfield["rounds"] == 600 and meanfield["warmup"] == 150
    assert meanfield["fast_rounds_per_sec"] > 0
    assert meanfield["meanfield_rounds_per_sec"] > 0
    assert meanfield["speedup"] > 0
    # At n=10 the trajectory error folds in real single-seed noise, so
    # the smoke only checks it is well-defined; the 10^4-server default
    # cell is where the 15% bar applies.
    assert np.isfinite(meanfield["trajectory_error"])
    assert meanfield["trajectory_error"] >= 0
    assert loaded["headline"]["meanfield_trajectory_error"] == meanfield[
        "trajectory_error"
    ]
    # The tiny smoke grid has no MEANFIELD_TARGET_SIZE point, so the
    # headline speedup bar stays unset (same shape as compiled below).
    assert loaded["headline"]["meanfield_best_speedup"] is None
    assert (
        loaded["headline"]["meanfield_target_speedup"]
        == MEANFIELD_TARGET_SPEEDUP
    )
    assert loaded["headline"]["service_overhead_seconds"] is not None
    assert loaded["headline"]["probe_overhead_fraction"] is not None
    assert loaded["headline"]["shard_overhead_fraction"] is not None
    assert loaded["headline"]["checkpoint_overhead_fraction"] is not None
    assert loaded["headline"]["scenario_overhead_fraction"] is not None
    assert (
        loaded["headline"]["scenario_overhead_target"] == SCENARIO_OVERHEAD_TARGET
    )
    assert isinstance(loaded["headline"]["numba_available"], bool)
    assert loaded["headline"]["process_best_speedup"] > 0
    assert loaded["headline"]["cpu_count"] == os.cpu_count()
    # The tiny smoke grid has no COMPILED_TARGET_SIZE point, so the
    # headline bar stays unset; the 200x100 default grid populates it.
    assert loaded["headline"]["compiled_best_speedup"] is None
    assert loaded["headline"]["compiled_target_speedup"] == COMPILED_TARGET_SPEEDUP
    peaks = [cell["peak_rss_kb"] for cell in loaded["cells"]]
    if loaded["headline"]["peak_rss_kb"] is not None:  # no ru_maxrss on Windows
        assert all(peak > 0 for peak in peaks)
        assert loaded["headline"]["peak_rss_kb"] >= max(peaks)
    else:
        assert all(peak is None for peak in peaks)


if __name__ == "__main__":
    sys.exit(main())
