"""Figure 8: decision run-times under high heterogeneity (mu ~ U[1, 100]).

Same protocol as Figure 5 with the wider rate distribution.  Paper shape:
trends match Figure 5; the heterogeneity itself does not change SCD-Alg4's
standing relative to JSQ/SED (in the paper's C++, SED's heap updates get
slightly slower here -- an artifact of their data structure, see their
Section E.2 discussion; our batch implementations are insensitive to it).
"""

import numpy as np
import pytest

import repro
from repro.analysis.runtime import (
    RUNTIME_TECHNIQUES,
    collect_snapshots,
    measure_decision_times,
    runtime_cdf_summary,
)

from _common import BENCH_SEED

TABLE_SPEC = (
    "fig8_runtime_hetero",
    "Figure 8: per-decision run-time CDF landmarks, rho=0.99 (mu ~ U[1,100]), microseconds",
    ["n", "technique", "p10_us", "p50_us", "p90_us", "p99_us"],
)

PROFILE = "u1_100"
SERVER_COUNTS = (100, 200, 300, 400)
NUM_SNAPSHOTS = 120

_snapshot_cache: dict[int, tuple[list, np.ndarray]] = {}


def snapshots_for(n: int) -> tuple[list, np.ndarray]:
    if n not in _snapshot_cache:
        system = repro.SystemSpec(n, 10, PROFILE)
        snaps = collect_snapshots(
            system, rho=0.99, rounds=60, seed=BENCH_SEED, max_snapshots=NUM_SNAPSHOTS
        )
        _snapshot_cache[n] = (snaps, system.rates())
    return _snapshot_cache[n]


@pytest.mark.parametrize("n", SERVER_COUNTS)
@pytest.mark.parametrize("technique", sorted(RUNTIME_TECHNIQUES))
def test_fig8_decision_time(benchmark, figure_table, n, technique):
    snaps, rates = snapshots_for(n)
    fn = RUNTIME_TECHNIQUES[technique]
    snap = snaps[len(snaps) // 2]
    benchmark(fn, snap.queues, rates, snap.batch_size, 10)
    times = measure_decision_times(technique, snaps, rates, 10)
    summary = runtime_cdf_summary(times)
    figure_table.add(
        n,
        technique,
        summary["p10_us"],
        summary["p50_us"],
        summary["p90_us"],
        summary["p99_us"],
    )
    benchmark.extra_info["median_us_over_snapshots"] = round(summary["p50_us"], 1)


def test_fig8_scaling_shape(benchmark):
    """Alg4's median grows roughly linearly in n; Alg1's superlinearly."""

    def growth():
        out = {}
        for tech in ("scd-alg4", "scd-alg1"):
            small_snaps, small_rates = snapshots_for(SERVER_COUNTS[0])
            big_snaps, big_rates = snapshots_for(SERVER_COUNTS[-1])
            small = np.median(
                measure_decision_times(tech, small_snaps, small_rates, 10)
            )
            big = np.median(measure_decision_times(tech, big_snaps, big_rates, 10))
            out[tech] = float(big / small)
        return out

    ratios = benchmark.pedantic(growth, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 2) for k, v in ratios.items()})
    # 4x the servers: Alg1's growth factor must exceed Alg4's.
    assert ratios["scd-alg1"] > ratios["scd-alg4"], ratios
