"""Ablation: empirical strong stability (Appendix D, footnote 1).

Runs a starkly heterogeneous system (one server holds most of the
capacity) near saturation and classifies each policy's total-queue series.
Expected shape: SCD, SED and WR stay bounded (SCD provably so); uniform
random and JSQ(2) destabilize -- their rate-oblivious sampling starves the
fast server, so the slow servers' queues grow without bound.
"""

import numpy as np
import pytest

import repro
from repro.analysis.stability import assess_stability
from _common import BENCH_ROUNDS, BENCH_SEED

TABLE_SPEC = (
    "ablation_stability",
    "Ablation: stability at rho=0.95 on a stark system (1x mu=50 + 20x mu=1)",
    ["policy", "stable", "queue growth (jobs/round)", "tail/head ratio"],
)

RATES = np.array([50.0] + [1.0] * 20)
RHO = 0.95
ROUNDS = max(3000, BENCH_ROUNDS)

EXPECTED_STABLE = {"scd": True, "sed": True, "wr": True, "random": False, "jsq(2)": False}


def run_policy(policy: str):
    lambdas = np.full(4, RHO * RATES.sum() / 4)
    sim = repro.Simulation(
        rates=RATES,
        policy=repro.make_policy(policy),
        arrivals=repro.PoissonArrivals(lambdas),
        service=repro.GeometricService(RATES),
        config=repro.SimulationConfig(rounds=ROUNDS, seed=BENCH_SEED),
    )
    return sim.run()


@pytest.mark.parametrize("policy", sorted(EXPECTED_STABLE))
def test_stability_verdict(benchmark, figure_table, policy):
    result = benchmark.pedantic(run_policy, args=(policy,), rounds=1, iterations=1)
    verdict = assess_stability(result, float(RATES.sum()))
    figure_table.add(
        policy, verdict.stable, verdict.growth_slope, verdict.tail_to_head_ratio
    )
    benchmark.extra_info["stable"] = verdict.stable
    benchmark.extra_info["slope"] = round(verdict.growth_slope, 4)
    assert verdict.stable == EXPECTED_STABLE[policy], str(verdict)
