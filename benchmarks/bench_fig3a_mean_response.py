"""Figure 3a: mean response time vs offered load, mu ~ U[1, 10].

Four systems -- (n, m) in {(100,5), (100,10), (200,10), (200,20)} -- and
the seven main-body policies.  Paper shape: SCD's curve is lowest at every
load on every system, TWF is the usual runner-up on the mean, and the gap
widens with load.
"""

import pytest

import repro
from _common import (
    BENCH_LOADS,
    MAIN_POLICIES,
    mean_response_rows,
    run_policy_over_loads,
)

TABLE_SPEC = (
    "fig3a_mean_response",
    "Figure 3a: mean response time vs offered load (mu ~ U[1,10])",
    ["system", "policy", "rho", "mean", "p99", "p99.9"],
)

SYSTEMS = repro.PAPER_SYSTEMS["u1_10"]


@pytest.mark.parametrize("system", SYSTEMS, ids=lambda s: s.name)
@pytest.mark.parametrize("policy", MAIN_POLICIES)
def test_fig3a_cell(benchmark, figure_table, system, policy):
    summaries = benchmark.pedantic(
        run_policy_over_loads, args=(policy, system), rounds=1, iterations=1
    )
    for rho, summary in summaries.items():
        benchmark.extra_info[f"mean@{rho}"] = round(summary["mean"], 3)
    mean_response_rows(figure_table, system, policy, summaries)
    # Sanity: response times are at least one round and finite.
    assert all(s["mean"] >= 1.0 for s in summaries.values())


@pytest.mark.parametrize("system", SYSTEMS, ids=lambda s: s.name)
def test_fig3a_scd_wins_at_high_load(benchmark, system):
    """The headline claim, checked head-to-head at the top of the grid."""
    rho = max(BENCH_LOADS)

    def head_to_head():
        from _common import grid_experiment

        experiment = grid_experiment(
            ("scd", "twf", "sed", "hjsq(2)"), system, loads=rho
        )
        result = experiment.run(keep_results=False)
        return {r.policy: r.metrics["mean"] for r in result.records}

    means = benchmark.pedantic(head_to_head, rounds=1, iterations=1)
    benchmark.extra_info.update({p: round(v, 3) for p, v in means.items()})
    assert means["scd"] == min(means.values()), means
