"""Figure 3b: response-time tail distributions, mu ~ U[1, 10].

n=100, m=10 at rho in {0.70, 0.90, 0.99}; reports the CCDF quantiles
(p99, p99.9, and the deepest level the run resolves) per policy.  Paper
shape: SCD's tail dominates at every load with no clear second best, and
at rho=0.99 SCD beats the runner-up by over 2x at the 1e-4 level.
"""

import pytest

import repro
from _common import CONFIG, MAIN_POLICIES

TABLE_SPEC = (
    "fig3b_tail_ccdf",
    "Figure 3b: response-time tails, n=100, m=10 (mu ~ U[1,10])",
    ["rho", "policy", "mean", "p99", "p99.9", "p99.99", "max"],
)

SYSTEM = repro.paper_system(100, 10, "u1_10")
LEVELS = (1e-2, 1e-3, 1e-4)


@pytest.mark.parametrize("rho", repro.TAIL_LOADS)
@pytest.mark.parametrize("policy", MAIN_POLICIES)
def test_fig3b_tail(benchmark, figure_table, policy, rho):
    result = benchmark.pedantic(
        repro.run_simulation,
        args=(policy, SYSTEM, rho),
        kwargs={"config": CONFIG},
        rounds=1,
        iterations=1,
    )
    hist = result.histogram
    quantiles = repro.tail_quantiles(hist, LEVELS)
    figure_table.add(
        rho,
        policy,
        hist.mean(),
        quantiles[1e-2],
        quantiles[1e-3],
        quantiles[1e-4],
        hist.max_response_time,
    )
    benchmark.extra_info["p99.9"] = quantiles[1e-3]
    assert hist.total > 0


def test_fig3b_scd_tail_dominates_at_099(benchmark):
    """SCD's deep tail beats the field at rho = 0.99 (paper: >2.1x)."""

    def tails():
        results = repro.tail_experiment(
            ["scd", "sed", "hlsq", "twf"], SYSTEM, 0.99, CONFIG
        )
        return {
            p: repro.tail_quantiles(r.histogram, (1e-3,))[1e-3]
            for p, r in results.items()
        }

    quantiles = benchmark.pedantic(tails, rounds=1, iterations=1)
    benchmark.extra_info.update(quantiles)
    assert quantiles["scd"] == min(quantiles.values()), quantiles
