"""Ablation: the total-arrival estimator inside SCD (Section 5.1).

The paper's SCD estimates the round total as ``a_est = m * a_d`` (Eq. 18)
and argues the per-dispatcher errors compensate.  This bench quantifies
the choice: Eq. 18 vs an oracle (true total), a constant (expected system
capacity -- load-oblivious), and an EWMA-smoothed variant.

Expected shape: Eq. 18 tracks the oracle closely (estimation is nearly
free); the constant lags once the actual load deviates from the guess;
heavy smoothing hurts under Poisson burstiness.  Stability holds for all
of them (Appendix D).
"""

import pytest

import repro
from _common import BENCH_LOADS, CONFIG

TABLE_SPEC = (
    "ablation_estimators",
    "Ablation: SCD arrival estimators (n=100, m=10, mu ~ U[1,10])",
    ["estimator", "rho", "mean", "p99"],
)

SYSTEM = repro.paper_system(100, 10, "u1_10")


def estimator_cases():
    capacity = float(SYSTEM.rates().sum())
    return {
        "scaled (Eq.18)": "scaled",
        "oracle": "oracle",
        "constant=capacity": capacity,
        "ewma(0.25)": repro.EwmaEstimator(alpha=0.25),
    }


@pytest.mark.parametrize("label", sorted(estimator_cases()))
@pytest.mark.parametrize("rho", BENCH_LOADS)
def test_estimator_cell(benchmark, figure_table, label, rho):
    estimator = estimator_cases()[label]

    result = benchmark.pedantic(
        repro.run_simulation,
        args=("scd", SYSTEM, rho),
        kwargs={"config": CONFIG, "estimator": estimator},
        rounds=1,
        iterations=1,
    )
    summary = result.summary()
    figure_table.add(label, rho, summary["mean"], summary["p99"])
    benchmark.extra_info["mean"] = round(summary["mean"], 3)
    assert summary["mean"] >= 1.0


def test_scaled_close_to_oracle(benchmark):
    """Eq. 18's whole point: almost no loss vs global knowledge."""
    rho = max(BENCH_LOADS)

    def both():
        return {
            "scaled": repro.run_simulation(
                "scd", SYSTEM, rho, CONFIG
            ).mean_response_time,
            "oracle": repro.run_simulation(
                "scd", SYSTEM, rho, CONFIG, estimator="oracle"
            ).mean_response_time,
        }

    means = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 3) for k, v in means.items()})
    assert means["scaled"] < 1.35 * means["oracle"], means
