#!/usr/bin/env python
"""Deep-tail run backing EXPERIMENTS.md's Figure 3b/4b tables.

Not collected by pytest (no bench_/test_ prefix) -- run directly:

    python benchmarks/deep_tails.py [--rounds N]

20,000 rounds at rho = 0.99 on the paper's n=100/m=10 systems gives
~11M jobs per cell, enough to resolve the 1e-4 CCDF level the paper
quotes.  Writes benchmarks/results/deep_tails.txt.
"""

import argparse
from pathlib import Path

import repro


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=20_000)
    parser.add_argument("--rho", type=float, default=0.99)
    args = parser.parse_args()

    lines = []
    for profile in ("u1_10", "u1_100"):
        system = repro.paper_system(100, 10, profile)
        config = repro.ExperimentConfig(rounds=args.rounds, base_seed=0)
        results = repro.tail_experiment(
            ["scd", "twf", "sed", "hjsq(2)", "hlsq"], system, args.rho, config
        )
        rows = []
        for policy, result in results.items():
            quantiles = repro.tail_quantiles(result.histogram, (1e-2, 1e-3, 1e-4))
            rows.append(
                [
                    policy,
                    result.mean_response_time,
                    quantiles[1e-2],
                    quantiles[1e-3],
                    quantiles[1e-4],
                    result.histogram.max_response_time,
                ]
            )
        factor, runner_up = repro.tail_improvement_factor(
            results["scd"].histogram,
            {p: r.histogram for p, r in results.items() if p != "scd"},
            level=1e-4,
        )
        lines.append(
            repro.format_table(
                ["policy", "mean", "p99", "p99.9", "p99.99", "max"],
                rows,
                title=(
                    f"rho={args.rho}, n=100, m=10, {profile}, "
                    f"{args.rounds} rounds"
                ),
            )
        )
        lines.append(
            f"SCD 1e-4 tail improvement over runner-up ({runner_up}): "
            f"{factor:.2f}x\n"
        )
    out = Path(__file__).resolve().parent / "results" / "deep_tails.txt"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text("\n".join(lines) + "\n")
    print("\n".join(lines))
    print(f"[written to {out}]")


if __name__ == "__main__":
    main()
