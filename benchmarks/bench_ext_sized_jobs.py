"""Extension: size-aware stochastic coordination (Section 7, problem 1).

Jobs carry i.i.d. work sizes; dispatchers know the size distribution's
first two moments.  The generalized SCD (see ``repro.core.sized``: same
KKT structure with ``A = wbar*(a-1)``, ``c = E[W^2]/wbar``) is compared
against size-*oblivious* SCD (treats each job as one unit, so its water
level is ~wbar too low) and SED, at equal offered work.

Expected shape: SED herds as always (the batch sizes in jobs stay large);
size-aware SCD beats oblivious SCD on the mean for moderately dispersed
sizes and consistently tightens the tail; the value of size information
grows with load.
"""

import numpy as np
import pytest

import repro
from _common import BENCH_ROUNDS, BENCH_SEED

TABLE_SPEC = (
    "ext_sized_jobs",
    "Extension: size-aware SCD vs oblivious SCD vs SED "
    "(n=100, m=10, mu ~ U[1,10] scaled to units, geometric sizes wbar=4)",
    ["rho", "policy", "mean", "p99", "p99.9"],
)

SYSTEM = repro.paper_system(100, 10, "u1_10")
SIZES = repro.GeometricSize(4.0)
LOADS = (0.9, 0.97)


def run_sized(policy, rho: float):
    rates = SYSTEM.rates()
    jobs_per_round = rho * rates.sum() / SIZES.mean
    sim = repro.SizedSimulation(
        rates=rates,
        policy=policy,
        arrivals=repro.PoissonArrivals(
            np.full(SYSTEM.num_dispatchers, jobs_per_round / SYSTEM.num_dispatchers)
        ),
        service=repro.GeometricService(rates),
        sizes=SIZES,
        rounds=max(1500, BENCH_ROUNDS),
        seed=repro.derive_seed(BENCH_SEED, SYSTEM.name, round(rho * 1e4), "sized"),
    )
    return sim.run()


def policies():
    return {
        "scd-sized": repro.SizedSCDPolicy(
            mean_size=SIZES.mean, second_moment_size=SIZES.second_moment
        ),
        "scd (oblivious)": repro.make_policy("scd"),
        "sed": repro.make_policy("sed"),
    }


@pytest.mark.parametrize("rho", LOADS)
@pytest.mark.parametrize("label", sorted(policies()))
def test_sized_cell(benchmark, figure_table, label, rho):
    policy = policies()[label]
    result = benchmark.pedantic(run_sized, args=(policy, rho), rounds=1, iterations=1)
    hist = result.histogram
    figure_table.add(
        rho, label, hist.mean(), hist.percentile(0.99), hist.percentile(0.999)
    )
    benchmark.extra_info["mean"] = round(hist.mean(), 3)
    assert (
        result.total_units_arrived
        == result.total_units_departed + result.final_units_queued
    )


def test_size_awareness_pays_at_high_load(benchmark):
    def trio():
        by_label = {}
        for label, policy in policies().items():
            by_label[label] = run_sized(policy, 0.97).mean_response_time
        return by_label

    means = benchmark.pedantic(trio, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 3) for k, v in means.items()})
    assert means["scd-sized"] < means["scd (oblivious)"], means
    assert means["scd-sized"] < means["sed"], means
