#!/usr/bin/env python
"""Extending the library: plugging a custom dispatching policy into the
simulator and racing it against SCD.

The example implements "d-SED with memory" -- a plausible practitioner
heuristic that samples d servers rate-proportionally and keeps an EWMA of
its own past placements to avoid repeatedly hammering one sample winner.
It registers the policy under a name, so the experiment runner and the
benchmark harness can use it like any built-in.

Run:
    python examples/custom_policy.py [--rounds N]
"""

import argparse

import numpy as np

import repro
from repro.policies.base import register_policy


class MemorySEDPolicy(repro.Policy):
    """Sample d servers ~ mu, rank by q/mu plus a self-placement penalty.

    The penalty is an EWMA of this dispatcher's own recent placements --
    a cheap, communication-free herding damper (each dispatcher avoids
    *its own* recent favorites, decorrelating the fleet a little).
    """

    def __init__(self, d: int = 3, memory: float = 0.5) -> None:
        super().__init__()
        if d < 1:
            raise ValueError("d must be >= 1")
        if not 0.0 <= memory < 1.0:
            raise ValueError("memory must be in [0, 1)")
        self.d = d
        self.memory = memory
        self.name = f"memsed({d})"

    def _on_bind(self) -> None:
        m, n = self.ctx.num_dispatchers, self.ctx.num_servers
        self._penalty = np.zeros((m, n))
        self._cdf = np.cumsum(self.rates / self.rates.sum())
        self._queues = None

    def begin_round(self, round_index, queues):
        self._queues = queues
        self._penalty *= self.memory  # decay everyone's memory once per round

    def dispatch(self, dispatcher, num_jobs):
        n = self.ctx.num_servers
        counts = np.zeros(n, dtype=np.int64)
        samples = np.searchsorted(self._cdf, self.rng.random((num_jobs, self.d)))
        load = self._queues / self.rates + self._penalty[dispatcher] / self.rates
        local = load.copy()
        inv_rates = 1.0 / self.rates
        for row in samples:
            best = row[int(np.argmin(local[row]))]
            counts[best] += 1
            local[best] += inv_rates[best]
        self._penalty[dispatcher] += counts
        return counts


register_policy("memsed")(MemorySEDPolicy)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3000)
    args = parser.parse_args()

    system = repro.SystemSpec(num_servers=60, num_dispatchers=10, profile="u1_10")
    config = repro.ExperimentConfig(rounds=args.rounds, base_seed=21)
    print("Racing a custom policy against the built-ins (rho = 0.95):\n")
    rows = []
    for policy in ["scd", "memsed", "hjsq(2)", "sed"]:
        result = repro.run_simulation(policy, system, rho=0.95, config=config)
        s = result.summary()
        rows.append([result.policy_name, s["mean"], s["p99"]])
    print(repro.format_table(["policy", "mean", "p99"], rows))
    print(
        "\nThe heuristic improves on plain SED but stochastic coordination\n"
        "still wins: per-dispatcher memory only decorrelates a dispatcher\n"
        "from itself, not from the rest of the fleet."
    )


if __name__ == "__main__":
    main()
