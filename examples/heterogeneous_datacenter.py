#!/usr/bin/env python
"""A datacenter with accelerators: the paper's motivating scenario.

Models a fleet of commodity CPU servers plus a 10% slice of much faster
accelerator nodes (GPU/FPGA-class, 40x the CPU rate) -- the "higher
heterogeneity" regime the paper attributes to accelerator deployments.
Compares heterogeneity-aware and -oblivious policies across offered loads,
and reports the tail quantiles that dominate user experience.

Run:
    python examples/heterogeneous_datacenter.py [--rounds N] [--loads 0.8 0.95]
"""

import argparse

import numpy as np

import repro


def build_system() -> tuple[repro.SystemSpec, np.ndarray]:
    system = repro.SystemSpec(num_servers=80, num_dispatchers=8, profile="bimodal")
    rates = system.rates()
    fast = rates > rates.min()
    print(
        f"Fleet: {int((~fast).sum())} CPU servers (mu={rates.min():g}) + "
        f"{int(fast.sum())} accelerators (mu={rates.max():g}); "
        f"accelerators hold {rates[fast].sum() / rates.sum():.0%} of capacity"
    )
    return system, rates


def sweep(system: repro.SystemSpec, loads: list[float], rounds: int) -> None:
    policies = ["scd", "twf", "sed", "hjsq(2)", "hlsq", "wr"]
    config = repro.ExperimentConfig(rounds=rounds, base_seed=3)
    print("\nMean response time by offered load")
    result = repro.mean_response_sweep(policies, system, tuple(loads), config)
    print(
        repro.format_series_table(
            "rho", loads, {p: result.row(p) for p in policies}
        )
    )
    for rho in loads:
        print(f"  best at rho={rho}: {result.best_policy_at(rho)}")


def tails(system: repro.SystemSpec, rho: float, rounds: int) -> None:
    policies = ["scd", "twf", "sed", "hlsq"]
    config = repro.ExperimentConfig(rounds=rounds, base_seed=3)
    results = repro.tail_experiment(policies, system, rho, config)
    print(f"\nTail quantiles at rho = {rho} (response time in rounds)")
    rows = []
    for policy, result in results.items():
        q = repro.tail_quantiles(result.histogram, (1e-1, 1e-2, 1e-3))
        rows.append([policy, q[1e-1], q[1e-2], q[1e-3]])
    print(
        repro.format_table(
            ["policy", "p90", "p99", "p99.9"], rows, float_format="{:.0f}"
        )
    )
    factor, runner_up = repro.tail_improvement_factor(
        results["scd"].histogram,
        {p: r.histogram for p, r in results.items() if p != "scd"},
        level=1e-3,
    )
    print(f"\nSCD's p99.9 is {factor:.2f}x shorter than the runner-up ({runner_up})")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=4000)
    parser.add_argument(
        "--loads", type=float, nargs="+", default=[0.7, 0.9, 0.99]
    )
    args = parser.parse_args()
    system, _ = build_system()
    sweep(system, args.loads, args.rounds)
    tails(system, max(args.loads), args.rounds)


if __name__ == "__main__":
    main()
