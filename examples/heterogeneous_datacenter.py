#!/usr/bin/env python
"""A datacenter with accelerators: the paper's motivating scenario.

Models a fleet of commodity CPU servers plus a 10% slice of much faster
accelerator nodes (GPU/FPGA-class, 40x the CPU rate) -- the "higher
heterogeneity" regime the paper attributes to accelerator deployments.
Declares the whole comparison as ONE :class:`repro.Experiment` grid
(policies x loads), runs it -- optionally on a process pool -- and
reports both the mean-response sweep and the tail quantiles that
dominate user experience.

Run:
    python examples/heterogeneous_datacenter.py [--rounds N] [--loads 0.8 0.95] [--workers W]
"""

import argparse

import numpy as np

import repro


def build_system() -> tuple[repro.SystemSpec, np.ndarray]:
    system = repro.SystemSpec(num_servers=80, num_dispatchers=8, profile="bimodal")
    rates = system.rates()
    fast = rates > rates.min()
    print(
        f"Fleet: {int((~fast).sum())} CPU servers (mu={rates.min():g}) + "
        f"{int(fast.sum())} accelerators (mu={rates.max():g}); "
        f"accelerators hold {rates[fast].sum() / rates.sum():.0%} of capacity"
    )
    return system, rates


POLICIES = ["scd", "twf", "sed", "hjsq(2)", "hlsq", "wr"]


def run_grid(
    system: repro.SystemSpec, loads: list[float], rounds: int, workers: int
) -> repro.ExperimentResult:
    experiment = repro.Experiment(
        policies=POLICIES,
        systems=system,
        loads=loads,
        rounds=rounds,
        base_seed=3,
    )
    print(
        f"\nRunning {experiment.size} (policy, load) cells on "
        f"{workers} worker(s)..."
    )
    return experiment.run(workers=workers)


def report_sweep(result: repro.ExperimentResult, loads: list[float]) -> None:
    print("\nMean response time by offered load")
    sweep = result.to_sweep()
    print(
        repro.format_series_table(
            "rho", list(loads), {p: sweep.row(p) for p in POLICIES}
        )
    )
    for rho in loads:
        print(f"  best at rho={rho}: {result.best_policy_at(rho)}")


def report_tails(result: repro.ExperimentResult, rho: float) -> None:
    tail_policies = ("scd", "twf", "sed", "hlsq")
    at_load = result.filter(rho=rho, policy=tail_policies)
    print(f"\nTail quantiles at rho = {rho} (response time in rounds)")
    histograms = {
        record.policy: record.result.histogram for record in at_load.records
    }
    rows = []
    for policy in tail_policies:
        q = repro.tail_quantiles(histograms[policy], (1e-1, 1e-2, 1e-3))
        rows.append([policy, q[1e-1], q[1e-2], q[1e-3]])
    print(
        repro.format_table(
            ["policy", "p90", "p99", "p99.9"], rows, float_format="{:.0f}"
        )
    )
    factor, runner_up = repro.tail_improvement_factor(
        histograms["scd"],
        {p: h for p, h in histograms.items() if p != "scd"},
        level=1e-3,
    )
    print(f"\nSCD's p99.9 is {factor:.2f}x shorter than the runner-up ({runner_up})")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=4000)
    parser.add_argument(
        "--loads", type=float, nargs="+", default=[0.7, 0.9, 0.99]
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool workers (results are identical to serial)",
    )
    args = parser.parse_args()
    system, _ = build_system()
    result = run_grid(system, args.loads, args.rounds, args.workers)
    report_sweep(result, args.loads)
    report_tails(result, max(args.loads))


if __name__ == "__main__":
    main()
