#!/usr/bin/env python
"""The declarative Experiment API, end to end.

Declares the paper's evaluation protocol as data -- policies x systems x
offered loads x replications x workloads -- then:

1. runs the grid serially and on a process pool, timing both and
   verifying the records are *identical* (cell seeds derive from
   workload coordinates, not from scheduling),
2. aggregates replications into means with standard errors,
3. shows a pluggable workload (skewed dispatcher traffic) riding the
   same grid, and
4. saves/reloads the whole result as JSON.

Run:
    python examples/experiment_grid.py [--rounds N] [--workers W]
"""

import argparse
import os
import tempfile
import time
from pathlib import Path

import repro


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=2000)
    parser.add_argument(
        "--workers", type=int, default=4, help="process-pool size for the timed run"
    )
    args = parser.parse_args()

    experiment = repro.Experiment(
        policies=["scd", "jsq", "sed", "hjsq(2)"],
        systems=[
            repro.SystemSpec(num_servers=50, num_dispatchers=5),
            repro.SystemSpec(num_servers=100, num_dispatchers=10),
        ],
        loads=[0.8, 0.95],
        replications=2,
        workloads=[repro.WorkloadSpec.paper(), repro.WorkloadSpec.skewed(3.0)],
        rounds=args.rounds,
        base_seed=0,
    )
    print(
        f"Grid: {len(experiment.policies)} policies x "
        f"{len(experiment.systems)} systems x {len(experiment.loads)} loads x "
        f"{experiment.replications} replications x "
        f"{len(experiment.workloads)} workloads = {experiment.size} cells\n"
    )

    start = time.perf_counter()
    serial = experiment.run(executor="serial", keep_results=False)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = experiment.run(workers=args.workers, keep_results=False)
    parallel_s = time.perf_counter() - start

    assert serial.records == parallel.records, "executors must agree bit-for-bit"
    print(
        f"serial: {serial_s:.2f}s   process pool ({args.workers} workers): "
        f"{parallel_s:.2f}s   speedup: {serial_s / parallel_s:.2f}x   "
        f"records identical: True"
    )
    cores = os.cpu_count() or 1
    if cores < 2:
        print("(single-CPU machine: the pool cannot beat serial here; "
              "speedup tracks available cores)")
    print()

    print("Replication-averaged mean response time (paper workload):")
    rows = []
    for (policy, system, rho, _w), stats in sorted(
        parallel.filter(workload="paper").aggregate("mean").items()
    ):
        rows.append([system, rho, policy, stats["mean"], stats["stderr"]])
    print(
        repro.format_table(["system", "rho", "policy", "mean", "stderr"], rows)
    )

    print("\nSkewed dispatcher traffic (skew 3.0), same grid:")
    for system in experiment.systems:
        for rho in experiment.loads:
            best = parallel.best_policy_at(rho, system=system.name, workload="skew3")
            print(f"  best on {system.name} at rho={rho}: {best}")

    with tempfile.TemporaryDirectory() as tmp:
        path = parallel.save(Path(tmp) / "grid.json")
        loaded = repro.ExperimentResult.load(path)
        print(
            f"\nsaved {len(parallel)} records to JSON and reloaded: "
            f"round-trip identical: {loaded.records == parallel.records}"
        )


if __name__ == "__main__":
    main()
