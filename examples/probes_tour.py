#!/usr/bin/env python
"""Tour of the pluggable probe API: declarative per-experiment metrics.

One small grid, every built-in probe attached (``metrics=[...]`` -- no
engine code touched), and the questions the default collectors cannot
answer, answered per policy:

* **server_stats** -- is the heterogeneity being used?  Mean utilization
  and how often servers sit idle (the paper's Section 3.1 failure mode
  is fast servers idling while slow queues grow).
* **herding** -- the coordination-failure mechanism: the worst and the
  average single-round pile-up on one server, plus placement imbalance.
* **dispatcher_stats** -- sanity on the traffic split.
* **windowed_mean** -- drift of the windowed mean response time between
  the first and last window (an instability smell the whole-run mean
  hides).

The same probes run unchanged on the reference and the fast kernels and
on the sized-job engine, and their summaries land in every record's
metrics as ``<probe>.<key>`` columns.

Run:
    python examples/probes_tour.py [--rounds N] [--backend fast]
"""

import argparse

import repro


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--rounds", type=int, default=3000)
    parser.add_argument("--rho", type=float, default=0.9)
    parser.add_argument("--backend", default="fast")
    args = parser.parse_args()

    system = repro.SystemSpec(num_servers=30, num_dispatchers=10)
    window = max(1, args.rounds // 10)
    experiment = repro.Experiment(
        policies=["scd", "jsq", "sed", "wr", "rr"],
        systems=system,
        loads=args.rho,
        rounds=args.rounds,
        backend=args.backend,
        metrics=[
            "server_stats",
            "dispatcher_stats",
            "herding",
            repro.ProbeSpec.of("windowed_mean", window=window),
        ],
    )
    print(
        f"{experiment.size} cells on {system.name} at rho={args.rho} "
        f"({args.rounds} rounds, backend={args.backend}), probes: "
        + ", ".join(spec.label for spec in experiment.metrics)
    )
    result = experiment.run(keep_results=False)

    windowed = f"windowed_mean[window={window}]"
    rows = []
    for record in sorted(result, key=lambda r: r.metrics["mean"]):
        metrics = record.metrics
        rows.append(
            [
                record.policy,
                metrics["mean"],
                metrics["server_stats.utilization_mean"],
                metrics["server_stats.idle_fraction"],
                int(metrics["herding.max_spike"]),
                metrics["herding.mean_spike"],
                metrics["dispatcher_stats.imbalance"],
                metrics[f"{windowed}.drift"],
            ]
        )
    print(
        repro.format_table(
            [
                "policy",
                "mean resp",
                "utilization",
                "idle frac",
                "worst spike",
                "mean spike",
                "disp imbal",
                "mean drift",
            ],
            rows,
            title="Per-policy utilization / herding (lowest mean response first)",
        )
    )
    print(
        "\nReading: coordinated policies (scd, wr) keep the worst per-round "
        "pile-up near the balanced share; deterministic full-information "
        "policies (jsq, sed) herd -- large spikes -- and oblivious rr "
        "under-uses the fast servers (higher idle fraction at equal load)."
    )


if __name__ == "__main__":
    main()
