#!/usr/bin/env python
"""Stability of power-of-d choices on a heterogeneous fleet: the fluid view.

Luo & Zubeldia ("Load Balancing Policies in Heterogeneous Systems:
Non-Monotone Stability and Heavy-Traffic Optimality") prove that in
discrete-time heterogeneous systems the stability region of a
load-balancing policy is NOT monotone in how aggressively it chases
short queues: more choice is not always safer, because queue-length
comparisons are blind to service rates.  This example cross-checks the
repo's mean-field subsystem against the two regimes where the stability
frontier is known in closed form, then sweeps the sampling parameter
``d`` between them:

* ``d = 1`` (uniform random): each server sees an independent thinned
  stream, so the fleet is stable iff every class can carry the
  per-server load -- ``rho* = mu_min / mean(mu)``, which collapses as
  heterogeneity grows.  Queue-blindness wastes the fast servers.
* ``d -> n`` (full JSQ): water-filling keeps feeding whichever servers
  drain, so the fluid frontier recovers ``rho* = 1``.

For each ``d`` the script classifies fluid trajectories (Euler on
``FluidModel.drift``, the classical fixed-point ODE) as stable or
divergent and bisects for the frontier ``rho*(d)``.  Finite horizons
make the estimate conservative near criticality -- relaxation time
blows up like ``1/(1-rho)^2`` -- so the closed-form anchors are checked
with crisp classifications at ``rho* +/- margin`` rather than by the
bisection value, and the printed table states the bias direction.  The
monotonicity verdict is reported, not assumed: on this smooth job-time
fluid the swept curve is typically monotone in ``d``; Luo & Zubeldia's
non-monotone examples live in the batch/tie effects of the pre-limit
discrete-time chain, which is exactly why the finite-n kernels and this
analytic backend are kept cross-validated instead of trusting either
alone.

Run:
    python examples/nonmonotone_stability.py [--choices 1 2 4 8] [--iters 8]
"""

import argparse

import numpy as np

from repro.meanfield.odes import FluidModel, ServerClasses


def classify(
    classes: ServerClasses,
    d: int,
    rho: float,
    depth: int,
    horizon: float,
    step: float,
) -> bool:
    """True when the fluid trajectory from empty diverges at load rho.

    Divergence means mass reaches the truncation depth or the mixture
    mean queue is still growing at the end of the horizon; both are
    conservative (a near-critical stable fleet that has not settled yet
    reads as divergent, never the reverse).
    """
    model = FluidModel(classes, depth=depth, choices=d)
    rate = rho * float(classes.gamma @ classes.mu)
    S = model.empty_state()
    steps = int(horizon / step)
    mark = int(steps * 0.9)
    q_mark = 0.0
    for i in range(steps):
        S = model.project(S + step * model.drift(S, rate))
        if i == mark:
            q_mark = model.mean_queue_per_server(S)
    tail = float(classes.gamma @ S[:, -1])
    growth = (model.mean_queue_per_server(S) - q_mark) / (horizon * 0.1)
    return tail > 1e-2 or growth > 1e-3


def classify_waterfill(
    classes: ServerClasses,
    rho: float,
    depth: int,
    rounds: int,
) -> bool:
    """True when the exact full-JSQ (d -> n) round map diverges.

    Sequential JSQ is water-filling in the fluid limit, so the d -> n
    anchor uses the exact split round maps rather than the power-of-d
    drift (whose stiffness grows with d).
    """
    model = FluidModel(classes, depth=depth)
    rate = rho * float(classes.gamma @ classes.mu)
    S = model.empty_state()
    mark = int(rounds * 0.9)
    q_mark = 0.0
    for i in range(rounds):
        S, _ = model.apply_waterfill_arrivals(S, rate)
        S, _ = model.depart(S)
        if i == mark:
            q_mark = model.mean_queue_per_server(S)
    tail = float(classes.gamma @ S[:, -1])
    growth = (model.mean_queue_per_server(S) - q_mark) / (rounds * 0.1)
    return tail > 1e-2 or growth > 1e-3


def frontier(
    classes: ServerClasses,
    d: int,
    iters: int,
    depth: int,
    horizon: float,
    step: float,
) -> float:
    lo, hi = 0.02, 1.0
    for _ in range(iters):
        mid = (lo + hi) / 2.0
        if classify(classes, d, mid, depth, horizon, step):
            hi = mid
        else:
            lo = mid
    return (lo + hi) / 2.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--choices", type=int, nargs="+", default=[1, 2, 3, 4, 8],
        help="sampling parameters d to sweep",
    )
    parser.add_argument(
        "--iters", type=int, default=8, help="bisection iterations per d"
    )
    parser.add_argument("--depth", type=int, default=160)
    parser.add_argument(
        "--horizon", type=float, default=600.0,
        help="fluid horizon (rounds) per classification",
    )
    parser.add_argument("--step", type=float, default=0.25)
    parser.add_argument(
        "--margin", type=float, default=0.12,
        help="distance from the closed-form anchor for the crisp checks",
    )
    args = parser.parse_args()

    # The paper's staple heterogeneous shape: a slow majority with a
    # fast minority carrying most of the capacity.
    rates = np.concatenate([np.full(80, 1.0), np.full(20, 8.0)])
    classes = ServerClasses.from_rates(rates)
    mean_mu = float(classes.gamma @ classes.mu)
    anchor = float(classes.mu.min()) / mean_mu
    counts = np.round(classes.gamma * classes.num_servers).astype(int)
    print(
        f"fleet: {rates.size} servers, classes "
        f"{np.round(classes.mu, 2).tolist()} x {counts.tolist()}, "
        f"mean capacity {mean_mu:.2f} jobs/round/server"
    )
    print(f"closed-form d=1 anchor: rho* = mu_min/mean(mu) = {anchor:.3f}")

    # Crisp cross-checks away from the frontier, where finite horizons
    # cannot blur the verdict.
    checks = [
        ("d=1", 1, anchor - args.margin, False),
        ("d=1", 1, anchor + args.margin, True),
        ("d->n", None, 0.9, False),
        ("d->n", None, 1.1, True),
    ]
    anchors_ok = True
    for label, d, rho, want_divergent in checks:
        if d is None:
            got = classify_waterfill(
                classes, rho, args.depth, int(args.horizon)
            )
        else:
            got = classify(
                classes, d, rho, args.depth, args.horizon, args.step
            )
        verdict = "divergent" if got else "stable"
        ok = got == want_divergent
        anchors_ok &= ok
        print(
            f"  check {label:4s} rho={rho:.3f}: {verdict:9s} "
            f"({'ok' if ok else 'MISMATCH'})"
        )
    print(
        "anchor checks "
        + ("passed (within tolerance)" if anchors_ok else "FAILED")
    )

    print(f"\nfluid stability frontier (finite-horizon, biased low near 1):")
    print("  d    rho*(d)")
    curve = []
    for d in args.choices:
        star = frontier(
            classes, d, args.iters, args.depth, args.horizon, args.step
        )
        curve.append(star)
        print(f"  {d:<4d} {star:.3f}")

    diffs = np.diff(curve)
    if np.all(diffs >= -0.02):
        print(
            "\nverdict: rho*(d) is monotone in d on this fluid -- the "
            "smooth job-time limit averages out the batch/tie effects "
            "behind Luo & Zubeldia's non-monotone discrete-time examples."
        )
    else:
        worst = int(np.argmin(diffs))
        print(
            f"\nverdict: NON-MONOTONE -- rho* drops from "
            f"{curve[worst]:.3f} (d={args.choices[worst]}) to "
            f"{curve[worst + 1]:.3f} (d={args.choices[worst + 1]}), the "
            "Luo & Zubeldia phenomenon: more choice is not always safer."
        )


if __name__ == "__main__":
    main()
