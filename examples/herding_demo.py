#!/usr/bin/env python
"""Herding: why accurate information can hurt distributed dispatchers.

All dispatchers see the same queue lengths.  Deterministic policies (JSQ,
SED) therefore make the *same* choice, flooding the momentarily-shortest
queues -- the "finger of death".  This demo quantifies herding directly:

* response times as the dispatcher count grows with total load fixed,
* a per-round "herding spike" -- the largest single-round job pile-up on
  any one server -- which is exactly the quantity stochastic coordination
  suppresses.

Run:
    python examples/herding_demo.py [--rounds N]
"""

import argparse

import numpy as np

import repro


class SpikeProbe(repro.Policy):
    """Wraps a policy and records the worst single-round server pile-up."""

    def __init__(self, inner: repro.Policy) -> None:
        super().__init__()
        self.inner = inner
        self.name = inner.name
        self.max_spike = 0
        self._round_received: np.ndarray | None = None

    def bind(self, ctx):  # noqa: D102 - delegation
        super().bind(ctx)
        self.inner.bind(ctx)
        self._round_received = np.zeros(ctx.num_servers, dtype=np.int64)

    def begin_round(self, round_index, queues):
        self._flush()
        self.inner.begin_round(round_index, queues)

    def dispatch(self, dispatcher, num_jobs):
        counts = self.inner.dispatch(dispatcher, num_jobs)
        self._round_received += counts
        return counts

    def end_round(self, round_index, queues):
        self.inner.end_round(round_index, queues)

    def observe_total_arrivals(self, total):
        self.inner.observe_total_arrivals(total)

    def _flush(self):
        if self._round_received is not None:
            spike = int(self._round_received.max())
            if spike > self.max_spike:
                self.max_spike = spike
            self._round_received[:] = 0


def run_with_probe(policy_name: str, m: int, rounds: int):
    system = repro.SystemSpec(num_servers=60, num_dispatchers=m, profile="u1_10")
    rates = system.rates()
    probe = SpikeProbe(repro.make_policy(policy_name))
    result = repro.simulate(
        rates=rates,
        policy=probe,
        arrivals=repro.PoissonArrivals(system.lambdas(0.9)),
        service=repro.GeometricService(rates),
        config=repro.SimulationConfig(
            rounds=rounds, seed=repro.derive_seed(9, system.name)
        ),
    )
    probe._flush()
    return result, probe.max_spike


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3000)
    args = parser.parse_args()

    print("60 heterogeneous servers (mu ~ U[1,10]), total load fixed at rho=0.9.")
    print("Splitting the same traffic across more dispatchers:\n")
    rows = []
    for policy in ["jsq", "sed", "scd"]:
        for m in [1, 5, 15]:
            result, spike = run_with_probe(policy, m, args.rounds)
            rows.append(
                [
                    policy,
                    m,
                    result.mean_response_time,
                    float(result.histogram.percentile(0.99)),
                    spike,
                ]
            )
    print(
        repro.format_table(
            ["policy", "dispatchers", "mean resp", "p99", "worst pile-up"],
            rows,
        )
    )
    print(
        "\nReading: JSQ/SED single-round pile-ups grow with the dispatcher\n"
        "count (every dispatcher picks the same short queue) and their\n"
        "response times degrade; SCD's randomized coordination keeps both\n"
        "nearly flat -- herding is a coordination failure, not an\n"
        "information problem (Section 1)."
    )


if __name__ == "__main__":
    main()
