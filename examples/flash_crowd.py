#!/usr/bin/env python
"""Policies under a flash crowd: who absorbs the spike, who drowns.

One grid, one nonstationary scenario: a quiet system whose arrival rate
jumps to ``spike`` times the baseline a quarter of the way into the run
and decays back exponentially (``--scenario flash:...`` on the CLI, a
``WorkloadSpec(scenario=...)`` here).  The whole-run mean response time
hides what matters -- whether a policy's queues *recover* after the
surge -- so the ``windowed_stability`` probe tracks the mean total
queue length per window of rounds:

* ``peak_mean``   -- how high the backlog piled during the surge;
* ``last_mean``   -- where it settled by the end of the run;
* ``growth``      -- last window over first: ~1 means fully drained,
  large means the spike pushed the policy past its stable point.

Every scenario runs bit-identically on the reference, fast, compiled
and sharded kernels; this script uses the fast kernel.

Run:
    python examples/flash_crowd.py [--rounds N] [--spike X] [--rho R]
"""

import argparse

import repro


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--rounds", type=int, default=4096)
    parser.add_argument("--rho", type=float, default=0.7)
    parser.add_argument("--spike", type=float, default=2.0)
    parser.add_argument("--backend", default="fast")
    args = parser.parse_args()

    system = repro.SystemSpec(num_servers=20, num_dispatchers=5)
    window = max(1, args.rounds // 8)
    scenario = (
        f"flash:spike={args.spike},at={args.rounds // 4},"
        f"decay={args.rounds // 8}"
    )
    probe = repro.ProbeSpec.of("windowed_stability", window=window)
    experiment = repro.Experiment(
        policies=["scd", "jsq", "sed", "wr", "rr"],
        systems=system,
        loads=args.rho,
        rounds=args.rounds,
        backend=args.backend,
        workloads=(repro.WorkloadSpec(name="paper", scenario=scenario),),
        metrics=[probe],
    )
    print(
        f"{experiment.size} cells on {system.name} at rho={args.rho}, "
        f"scenario {scenario} ({args.rounds} rounds, "
        f"backend={args.backend}, window={window})"
    )
    result = experiment.run(keep_results=False)

    label = probe.label
    rows = []
    for record in sorted(result, key=lambda r: r.metrics[f"{label}.growth"]):
        metrics = record.metrics
        rows.append(
            [
                record.policy,
                metrics["mean"],
                metrics[f"{label}.first_mean"],
                metrics[f"{label}.peak_mean"],
                int(metrics[f"{label}.peak_window"]),
                metrics[f"{label}.last_mean"],
                metrics[f"{label}.growth"],
            ]
        )
    print(
        repro.format_table(
            [
                "policy",
                "mean resp",
                "quiet queue",
                "peak queue",
                "peak win",
                "final queue",
                "growth",
            ],
            rows,
            title="Queue backlog through the spike (best recovery first)",
        )
    )
    print(
        "\nReading: the spike lands in the same window for everyone (the "
        "workload realization is shared), so 'peak queue' measures how "
        "hard each policy is hit and 'growth' whether it drains back to "
        "the quiet baseline.  Full-information policies (jsq, sed) absorb "
        "the surge fastest; coordination-light policies pay with a higher "
        "peak and a slower recovery; rate-oblivious rr is unstable on "
        "this heterogeneous fleet even before the spike (the paper's "
        "Section 3 failure mode), so its backlog just keeps growing.  "
        "Raise --spike past the slack capacity and nobody returns to "
        "the quiet baseline."
    )


if __name__ == "__main__":
    main()
