#!/usr/bin/env python
"""Correlated traffic surges: stochastic coordination under bursty load.

The paper's model only assumes arrivals are stochastic and unknown; its
evaluation uses steady Poisson traffic.  Real entry points see correlated
surges -- a marketing event or a retry storm hits *all* dispatchers at
once.  This example drives the same cluster with a two-state modulated
Poisson process (calm / surge, the phase shared by all dispatchers) and
compares policies at equal *average* load.

Surges are where herding bites hardest: a burst arrives exactly when every
dispatcher is staring at the same few short queues.  SCD's per-round
optimization re-plans with the estimated burst size (Eq. 18 scales with
the dispatcher's own observed batch), so its advantage should widen here.

Run:
    python examples/bursty_arrivals.py [--rounds N] [--surge-factor F]
"""

import argparse

import numpy as np

import repro


def run_policy(policy: str, system: repro.SystemSpec, bursty: bool,
               surge_factor: float, rounds: int) -> repro.SimulationResult:
    rates = system.rates()
    mean_lambdas = system.lambdas(0.85)
    if bursty:
        # Calm/surge rates whose 50/50 mixture matches the steady mean.
        calm = 2.0 * mean_lambdas / (1.0 + surge_factor)
        surge = surge_factor * calm
        arrivals = repro.ModulatedPoissonArrivals(calm, surge, switch_prob=0.05)
    else:
        arrivals = repro.PoissonArrivals(mean_lambdas)
    return repro.simulate(
        rates=rates,
        policy=repro.make_policy(policy),
        arrivals=arrivals,
        service=repro.GeometricService(rates),
        config=repro.SimulationConfig(
            rounds=rounds, seed=repro.derive_seed(31, system.name, bursty)
        ),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=4000)
    parser.add_argument(
        "--surge-factor", type=float, default=3.0,
        help="surge-phase arrival rate relative to the calm phase",
    )
    args = parser.parse_args()

    system = repro.SystemSpec(num_servers=80, num_dispatchers=10, profile="u1_10")
    policies = ["scd", "sed", "hjsq(2)", "hlsq"]

    print(
        f"80 servers, 10 dispatchers, mean load 0.85; surge phase is "
        f"{args.surge_factor}x the calm phase,\nphase shared by all "
        f"dispatchers (correlated bursts).\n"
    )
    rows = []
    for policy in policies:
        steady = run_policy(policy, system, False, args.surge_factor, args.rounds)
        burst = run_policy(policy, system, True, args.surge_factor, args.rounds)
        rows.append(
            [
                policy,
                steady.mean_response_time,
                burst.mean_response_time,
                float(steady.histogram.percentile(0.999)),
                float(burst.histogram.percentile(0.999)),
            ]
        )
    print(
        repro.format_table(
            ["policy", "mean (steady)", "mean (bursty)", "p99.9 (steady)", "p99.9 (bursty)"],
            rows,
        )
    )
    scd_row = next(r for r in rows if r[0] == "scd")
    rest_bursty_mean = min(r[2] for r in rows if r[0] != "scd")
    print(
        f"\nUnder bursts SCD's mean is {rest_bursty_mean / scd_row[2]:.2f}x "
        f"better than the best alternative."
    )


if __name__ == "__main__":
    main()
