#!/usr/bin/env python
"""Correlated traffic surges: stochastic coordination under bursty load.

The paper's model only assumes arrivals are stochastic and unknown; its
evaluation uses steady Poisson traffic.  Real entry points see correlated
surges -- a marketing event or a retry storm hits *all* dispatchers at
once.  This example declares ONE experiment grid with TWO workloads --
the paper's steady Poisson workload and ``WorkloadSpec.bursty`` (a
two-state modulated Poisson whose calm/surge phase is shared by all
dispatchers) at equal *average* load -- and compares policies across
both.

Surges are where herding bites hardest: a burst arrives exactly when
every dispatcher is staring at the same few short queues.  SCD's
per-round optimization re-plans with the estimated burst size (Eq. 18
scales with the dispatcher's own observed batch), so its advantage
should widen here.

Run:
    python examples/bursty_arrivals.py [--rounds N] [--surge-factor F] [--workers W]
"""

import argparse

import repro

RHO = 0.85


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=4000)
    parser.add_argument(
        "--surge-factor", type=float, default=3.0,
        help="surge-phase arrival rate relative to the calm phase",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool workers (results are identical to serial)",
    )
    args = parser.parse_args()

    system = repro.SystemSpec(num_servers=80, num_dispatchers=10, profile="u1_10")
    policies = ["scd", "sed", "hjsq(2)", "hlsq"]

    experiment = repro.Experiment(
        policies=policies,
        systems=system,
        loads=RHO,
        workloads=[
            repro.WorkloadSpec.paper(),
            repro.WorkloadSpec.bursty(args.surge_factor, name="bursty"),
        ],
        rounds=args.rounds,
        base_seed=31,
    )

    print(
        f"80 servers, 10 dispatchers, mean load {RHO}; surge phase is "
        f"{args.surge_factor}x the calm phase,\nphase shared by all "
        f"dispatchers (correlated bursts).  {experiment.size} cells.\n"
    )
    result = experiment.run(workers=args.workers)

    rows = []
    for policy in policies:
        steady = result.only(policy=policy, workload="paper")
        burst = result.only(policy=policy, workload="bursty")
        rows.append(
            [
                policy,
                steady.metrics["mean"],
                burst.metrics["mean"],
                steady.metrics["p999"],
                burst.metrics["p999"],
            ]
        )
    print(
        repro.format_table(
            ["policy", "mean (steady)", "mean (bursty)", "p99.9 (steady)", "p99.9 (bursty)"],
            rows,
        )
    )
    scd_bursty = result.metric("mean", policy="scd", workload="bursty")
    rest_bursty_mean = min(
        result.metric("mean", policy=p, workload="bursty")
        for p in policies
        if p != "scd"
    )
    print(
        f"\nUnder bursts SCD's mean is {rest_bursty_mean / scd_bursty:.2f}x "
        f"better than the best alternative."
    )


if __name__ == "__main__":
    main()
