#!/usr/bin/env python
"""Regenerate the data behind any of the paper's evaluation figures.

Every figure of Section 6 / Appendix E maps to a subcommand of this script;
output is the figure's data as aligned text tables (policies as columns).
The paper runs 1e5 rounds per cell on C++; pass ``--rounds 100000`` for a
full-fidelity (slow) run, or keep the default for a laptop-scale pass that
preserves the qualitative shape.

Run:
    python examples/paper_figures.py --figure 3a --rounds 2000
    python examples/paper_figures.py --figure 3b
    python examples/paper_figures.py --figure 5
    python examples/paper_figures.py --figure all --rounds 1000
"""

import argparse

import numpy as np

import repro
from repro.analysis.runtime import (
    RUNTIME_TECHNIQUES,
    collect_snapshots,
    measure_decision_times,
    runtime_cdf_summary,
)

MAIN_POLICIES = ["scd", "twf", "jsq", "sed", "hjsq(2)", "hjiq", "hlsq"]
EXTRA_POLICIES = ["scd", "jsq(2)", "jiq", "lsq", "wr"]


def mean_response_figure(profile: str, policies: list[str], args) -> None:
    """Figures 3a / 4a / 6a / 7a: mean response vs offered load, 4 systems."""
    config = repro.ExperimentConfig(rounds=args.rounds, base_seed=args.seed)
    for system in repro.PAPER_SYSTEMS[profile]:
        sweep = repro.mean_response_sweep(
            policies, system, tuple(args.loads), config
        )
        print(
            repro.format_series_table(
                "rho",
                args.loads,
                {p: sweep.row(p) for p in policies},
                title=(
                    f"\nn={system.num_servers}, m={system.num_dispatchers}, "
                    f"mu ~ {profile}: mean response time"
                ),
            )
        )


def tail_figure(profile: str, policies: list[str], args) -> None:
    """Figures 3b / 4b / 6b / 7b: response-time CCDF at three loads."""
    config = repro.ExperimentConfig(rounds=args.rounds, base_seed=args.seed)
    system = repro.paper_system(100, 10, profile)
    for rho in repro.TAIL_LOADS:
        results = repro.tail_experiment(policies, system, rho, config)
        max_tau = max(r.histogram.max_response_time for r in results.values())
        taus = np.unique(np.linspace(1, max(2, max_tau), 12).astype(int))
        series = {p: r.histogram.ccdf(taus) for p, r in results.items()}
        print(
            repro.format_series_table(
                "tau",
                taus.tolist(),
                series,
                title=f"\nn=100, m=10, rho={rho}, mu ~ {profile}: CCDF P(T > tau)",
                float_format="{:.2e}",
            )
        )


def runtime_figure(profile: str, args) -> None:
    """Figures 5 / 8: per-decision computation time CDF landmarks."""
    print(
        f"\nDecision run-times at rho=0.99, mu ~ {profile} "
        f"(microseconds; Python/numpy substrate -- compare shapes, not\n"
        f"absolute values against the paper's C++)"
    )
    for n in args.servers:
        system = repro.SystemSpec(n, 10, profile)
        snapshots = collect_snapshots(
            system, rho=0.99, rounds=args.runtime_rounds, seed=args.seed,
            max_snapshots=args.snapshots,
        )
        rates = system.rates()
        rows = []
        for technique in RUNTIME_TECHNIQUES:
            times = measure_decision_times(technique, snapshots, rates, 10)
            s = runtime_cdf_summary(times)
            rows.append(
                [technique, s["p10_us"], s["p50_us"], s["p90_us"], s["p99_us"]]
            )
        print(
            repro.format_table(
                ["technique", "p10", "p50", "p90", "p99"],
                rows,
                title=f"\nn={n} servers:",
                float_format="{:.1f}",
            )
        )


FIGURES = {
    "3a": lambda args: mean_response_figure("u1_10", MAIN_POLICIES, args),
    "3b": lambda args: tail_figure("u1_10", MAIN_POLICIES, args),
    "4a": lambda args: mean_response_figure("u1_100", MAIN_POLICIES, args),
    "4b": lambda args: tail_figure("u1_100", MAIN_POLICIES, args),
    "5": lambda args: runtime_figure("u1_10", args),
    "6": lambda args: (
        mean_response_figure("u1_10", EXTRA_POLICIES, args),
        tail_figure("u1_10", EXTRA_POLICIES, args),
    ),
    "7": lambda args: (
        mean_response_figure("u1_100", EXTRA_POLICIES, args),
        tail_figure("u1_100", EXTRA_POLICIES, args),
    ),
    "8": lambda args: runtime_figure("u1_100", args),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figure", choices=[*FIGURES, "all"], default="3a",
        help="which paper figure to regenerate",
    )
    parser.add_argument("--rounds", type=int, default=2000)
    parser.add_argument(
        "--loads", type=float, nargs="+", default=[0.6, 0.7, 0.8, 0.9, 0.99]
    )
    parser.add_argument(
        "--servers", type=int, nargs="+", default=[100, 200, 300, 400],
        help="server counts for the run-time figures",
    )
    parser.add_argument("--snapshots", type=int, default=200)
    parser.add_argument("--runtime-rounds", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    targets = list(FIGURES) if args.figure == "all" else [args.figure]
    for figure in targets:
        print(f"\n{'#' * 66}\n# Figure {figure}\n{'#' * 66}")
        FIGURES[figure](args)


if __name__ == "__main__":
    main()
