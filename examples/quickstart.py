#!/usr/bin/env python
"""Quickstart: the SCD math on the paper's worked examples, then a small
cluster simulation comparing SCD with classic policies.

Run:
    python examples/quickstart.py [--rounds N]
"""

import argparse

import numpy as np

import repro


def show_figure1() -> None:
    """Figure 1: balancing workload, not job counts."""
    print("=" * 64)
    print("Figure 1 - ideally balanced workload vs balanced job counts")
    print("=" * 64)
    queues = np.array([2, 1, 3, 1])
    rates = np.array([5.0, 2.0, 1.0, 1.0])
    arrivals = 7
    iwl = repro.compute_iwl(queues, rates, arrivals)
    iba = repro.compute_iba(queues, rates, iwl)
    print(f"server rates     : {rates}")
    print(f"queued jobs      : {queues}")
    print(f"incoming jobs    : {arrivals}")
    print(f"ideal workload   : {iwl}           (paper: 1.375)")
    print(f"ideal assignment : {iba}  (paper: [4.875 1.75 0 0.375])")
    print()


def show_figure2() -> None:
    """Figure 2: a server *above* the ideal workload can still be probable."""
    print("=" * 64)
    print("Figure 2 - the probable set is not just the under-loaded servers")
    print("=" * 64)
    queues = np.array([9, 0, 0, 0, 0, 0, 0, 0, 0])
    rates = np.array([10.0, 1, 1, 1, 1, 1, 1, 1, 1])
    arrivals = 7
    iwl = repro.compute_iwl(queues, rates, arrivals)
    probs = repro.scd_probabilities(queues, rates, arrivals, iwl)
    print(f"one fast server (mu=10, q=9), eight slow empty ones, a={arrivals}")
    print(f"ideal workload        : {iwl}      (paper: 0.875)")
    print(f"fast server's load    : {queues[0] / rates[0]}  -- above the IWL!")
    print(f"fast server's p       : {probs[0]:.4f}    (paper: ~0.221)")
    print(f"its expected jobs     : {arrivals * probs[0]:.3f}     (paper: ~1.55)")
    print(f"slow servers' E[load] : {arrivals * probs[1]:.3f}     (paper: ~0.68)")
    print()


def run_comparison(rounds: int) -> None:
    """A heterogeneous multi-dispatcher cluster, five policies."""
    print("=" * 64)
    print("Simulation - 50 heterogeneous servers, 5 dispatchers, rho = 0.9")
    print("=" * 64)
    system = repro.SystemSpec(num_servers=50, num_dispatchers=5, profile="u1_10")
    config = repro.ExperimentConfig(rounds=rounds, base_seed=1)
    rows = []
    for policy in ["scd", "twf", "jsq", "sed", "hjsq(2)", "wr"]:
        result = repro.run_simulation(policy, system, rho=0.9, config=config)
        summary = result.summary()
        rows.append(
            [policy, summary["mean"], summary["p95"], summary["p99"], summary["max"]]
        )
    print(
        repro.format_table(
            ["policy", "mean", "p95", "p99", "max"],
            rows,
            title=f"Response times over {rounds} rounds (same workload for all)",
        )
    )
    best = min(rows, key=lambda r: r[1])[0]
    print(f"\nBest mean response time: {best}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--rounds", type=int, default=3000, help="simulation rounds per policy"
    )
    args = parser.parse_args()
    show_figure1()
    show_figure2()
    run_comparison(args.rounds)


if __name__ == "__main__":
    main()
