#!/usr/bin/env python
"""Size-aware dispatching: what job information buys (open problem 1).

The paper closes by asking whether information about the jobs themselves
can improve stochastic coordination.  Here jobs carry i.i.d. work sizes
and dispatchers know the size distribution's first two moments; the
generalized SCD solver (see docs/MATH.md, section 6) folds them into the
per-round optimization.

The demo races three dispatchers' worth of knowledge at equal offered
work:

* SED            -- full queue info, deterministic (herds),
* SCD, oblivious -- stochastic coordination, but each job counted as one
                    work unit (the water level sits ~E[W]x too low),
* SCD, size-aware -- the generalized solver with (E[W], E[W^2]).

Run:
    python examples/sized_jobs.py [--rounds N] [--mean-size W]
"""

import argparse

import numpy as np

import repro


def run(policy, sizes, system, rho, rounds, seed, backend="reference"):
    rates = system.rates()
    jobs_per_round = rho * rates.sum() / sizes.mean
    sim = repro.SizedSimulation(
        rates=rates,
        policy=policy,
        arrivals=repro.PoissonArrivals(
            np.full(system.num_dispatchers, jobs_per_round / system.num_dispatchers)
        ),
        service=repro.GeometricService(rates),
        sizes=sizes,
        rounds=rounds,
        seed=seed,
        backend=backend,
    )
    return sim.run()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3000)
    parser.add_argument("--mean-size", type=float, default=4.0)
    parser.add_argument("--rho", type=float, default=0.95)
    parser.add_argument(
        "--backend",
        default="fast",
        choices=repro.available_sized_backends(),
        help="sized engine round kernel (fast is bit-identical here: "
        "all three contenders run through the dispatch fallback)",
    )
    args = parser.parse_args()

    system = repro.SystemSpec(num_servers=100, num_dispatchers=10, profile="u1_10")
    sizes = repro.GeometricSize(args.mean_size)
    print(
        f"Geometric job sizes: E[W] = {sizes.mean:g}, E[W^2] = "
        f"{sizes.second_moment:g} (cv^2 = "
        f"{sizes.second_moment / sizes.mean**2 - 1:.2f}); offered work "
        f"rho = {args.rho}\n"
    )
    contenders = {
        "sed": repro.make_policy("sed"),
        "scd (size-oblivious)": repro.make_policy("scd"),
        "scd (size-aware)": repro.SizedSCDPolicy(
            mean_size=sizes.mean, second_moment_size=sizes.second_moment
        ),
    }
    rows = []
    for label, policy in contenders.items():
        result = run(
            policy, sizes, system, args.rho, args.rounds, seed=5,
            backend=args.backend,
        )
        rows.append(
            [
                label,
                result.mean_response_time,
                float(result.histogram.percentile(0.99)),
                float(result.histogram.percentile(0.999)),
            ]
        )
    print(repro.format_table(["policy", "mean", "p99", "p99.9"], rows))
    aware = next(r for r in rows if "aware" in r[0])
    oblivious = next(r for r in rows if "oblivious" in r[0])
    print(
        f"\nKnowing the size moments is worth "
        f"{100 * (oblivious[1] / aware[1] - 1):.0f}% on the mean and "
        f"{100 * (oblivious[3] / aware[3] - 1):.0f}% on the p99.9 tail here."
    )


if __name__ == "__main__":
    main()
