"""Setup shim: enables `python setup.py develop` in environments without
the `wheel` package (all real metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
